// multi_partition.hpp — split S at given ranks in O((N/B) log_{M/B} K) I/Os.
//
// The multi-partition problem (paper §1.1): given K-1 split ranks
// 0 < r_1 < ... < r_{K-1} < N, permute S so that partition i (the elements
// with ranks in (r_{i-1}, r_i]) is contiguous and partitions appear in order.
// Aggarwal & Vitter's recursive distribution achieves the optimal
// Θ((N/B) log_{M/B} K) I/Os:
//
//   * each node computes memory-resident splitters of its piece with exact
//     bucket counts (linear_splitters + one counting scan — O(piece/B)),
//   * snaps d-1 evenly spaced target ranks (d = Theta(M/B)) to the nearest
//     splitter-bucket boundaries and distributes its records over those cut
//     elements in one scan with d output buffers; the cut counts are exact,
//     so rank bookkeeping stays exact even though cuts need not hit the
//     requested ranks — extra boundaries only refine the partitioning,
//   * recurses into each sub-piece with the enclosed target ranks; pieces
//     that fit in memory are sorted there, which realizes all remaining
//     ranks at once.
//
// Depth is O(log_d K) and every level moves each record O(1) times.  Buckets
// that contain no further target ranks are finished partition runs and are
// written straight into their final output position during the distribution
// pass (RangeWriter handles the shared edge blocks), so no concatenation
// pass is needed.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "dist/distributed.hpp"
#include "em/checkpoint.hpp"
#include "em/context.hpp"
#include "em/pass_engine.hpp"
#include "em/em_vector.hpp"
#include "em/stream.hpp"
#include "em/thread_pool.hpp"
#include "select/linear_splitters.hpp"
#include "sort/chunk_sort.hpp"

namespace emsplit {

/// One maximal run of output as realized by the partition recursion.  Cut
/// boundaries are exact counts, so every realized run already occupies its
/// final record range; a `sorted` run (an in-memory leaf) is moreover in
/// final sorted order, while an unsorted one (a finished partition streamed
/// straight through) still needs an internal sort if the caller wants total
/// order.  distribution_sort exploits this to skip re-sorting leaf output.
struct MultiPartitionSpan {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  bool sorted = false;
};

template <EmRecord T>
struct MultiPartitionResult {
  /// The input permuted so partitions are contiguous and ordered.
  EmVector<T> data;
  /// Partition i occupies records [bounds[i], bounds[i+1]) of `data`.
  std::vector<std::uint64_t> bounds;
  /// Disjoint realized runs tiling [0, n), in increasing position order.
  std::vector<MultiPartitionSpan> spans;
};

namespace detail {

/// Below this many resident records a classification batch is not worth a
/// pool dispatch; the serial per-record loop runs instead.  An execution
/// threshold, not geometry: both paths push the same sequence.
inline constexpr std::size_t kClassifyGrain = 1024;

/// Distribution fan-out this context supports: d output stream buffers plus
/// a reader, the transient edge-merge block a RangeWriter flush may need,
/// and the cut-element table must fit in memory.  Every stream buffers
/// s = stream_blocks() blocks under the current I/O tuning (s = 1 by
/// default, reproducing the classic geometry).
template <EmRecord T>
std::size_t partition_fanout(const Context& ctx) {
  const std::size_t bb = ctx.block_bytes();
  const std::size_t blocks = ctx.mem_bytes() / bb;
  const std::size_t s = ctx.stream_blocks();
  if (blocks <= 2 * s + 2) return 2;
  // d stream buffers (s blocks each) + d cut elements + reader (s blocks) +
  // transient merge block + one block of slack must fit:
  //   d * (s * bb + sizeof(T)) <= (blocks - s - 2) * bb.
  const std::size_t d = (blocks - s - 2) * bb / (s * bb + sizeof(T));
  return std::max<std::size_t>(2, d);
}

/// Where one distribution bucket's records go: either a scratch vector (the
/// bucket will be recursed into) or directly into the final output range
/// (the bucket is already a finished partition run).
template <EmRecord T>
struct BucketSink {
  EmVector<T> scratch;  // bound when the bucket needs further recursion
  std::unique_ptr<StreamWriter<T>> scratch_writer;
  std::unique_ptr<RangeWriter<T>> direct_writer;
  std::uint64_t expected = 0;
  std::uint64_t received = 0;

  void push(const T& v) {
    if (++received > expected) {
      // Overflowing a direct range would silently corrupt the neighbour
      // partition; fail fast instead.
      throw std::logic_error(
          "multi_partition: bucket received more records than its rank span "
          "(is the comparator a strict total order?)");
    }
    if (scratch_writer != nullptr) {
      scratch_writer->push(v);
    } else {
      direct_writer->push(v);
    }
  }
  void finish() {
    if (scratch_writer != nullptr) {
      scratch_writer->finish();
    } else {
      direct_writer->finish();
    }
  }
};

// PendingBucket<T> — the scratch-bucket record a distribution pass hands to
// the recursion — lives in em/pass_engine.hpp: it is the worklist item type
// the DistributionCheckpoint lifecycle publishes.

template <EmRecord T, typename Less>
std::vector<PendingBucket<T>> distribute_piece(
    Context& ctx, const EmVector<T>& src, std::size_t first, std::size_t last,
    std::span<const std::uint64_t> ranks, EmVector<T>& out,
    std::size_t out_offset, Less less, std::vector<MultiPartitionSpan>& spans);

/// Recursive node: partition a piece at the relative ranks `ranks` (strictly
/// increasing, in (0, piece length)), writing the fully partitioned records
/// into `out` at [out_offset, out_offset + piece length).
///
/// The piece is either `owned` (an intermediate vector this node recycles
/// once distributed) or, at the root only, records [first, last) of `*root`
/// (never recycled).  Distribution writes finished partition runs (buckets
/// with no interior ranks) straight into `out` via RangeWriter, so no
/// separate concatenation pass is needed.
template <EmRecord T, typename Less>
void partition_node(Context& ctx, const EmVector<T>* root, std::size_t first,
                    std::size_t last, EmVector<T> owned,
                    std::span<const std::uint64_t> ranks, EmVector<T>& out,
                    std::size_t out_offset, Less less,
                    std::vector<MultiPartitionSpan>& spans) {
  const EmVector<T>& src = owned.bound() ? owned : *root;
  if (owned.bound()) {
    first = 0;
    last = owned.size();
  }
  const std::size_t n = last - first;

  if (ranks.empty()) {
    ScopedPhase phase(ctx.profile(), "mpart/leaf-copy");
    // Finished run: stream it into its final position.
    StreamReader<T> reader(src, first, last);
    RangeWriter<T> writer(out, out_offset);
    while (!reader.done()) writer.push(reader.next());
    writer.finish();
    if (n > 0) spans.push_back({out_offset, out_offset + n, false});
    owned.reset();
    return;
  }

  if (n <= ctx.mem_records<T>() / 3) {
    ScopedPhase phase(ctx.profile(), "mpart/in-memory-leaf");
    // Memory-sized piece: sort it in memory; the sorted run realizes every
    // remaining rank at once.  This caps the recursion depth at
    // O(log_{M/B} min{K, N/M'}) — the min{...} terms in the paper's
    // Theorems 3 and 6.  The sort is shard-parallel (chunk_sort.hpp); the
    // merged push sequence is the same as a single std::sort's, so the
    // RangeWriter performs identical I/O.
    auto res = ctx.budget().reserve(n * sizeof(T));
    std::vector<T> buf(n);
    load_range<T>(src, first, buf);
    const auto shards = sort_shards_in_place<T>(ctx, std::span<T>(buf), less);
    RangeWriter<T> writer(out, out_offset);
    merge_shards<T>(std::span<const T>(buf), shards, less,
                    [&writer](const T& v) { writer.push(v); });
    writer.finish();
    spans.push_back({out_offset, out_offset + n, true});
    owned.reset();
    return;
  }

  auto pending = distribute_piece<T, Less>(ctx, src, first, last, ranks, out,
                                           out_offset, less, spans);
  owned.reset();  // parent data fully distributed; recycle its blocks

  for (auto& pb : pending) {
    partition_node<T, Less>(ctx, nullptr, 0, 0, std::move(pb.scratch),
                            pb.ranks, out,
                            static_cast<std::size_t>(pb.out_lo), less, spans);
  }
}

/// The distribution pass of one node, factored out of partition_node so the
/// checkpointed top level (multi_partition below) can journal its outcome
/// at the pass boundary: cut selection, one scan distributing the piece over
/// the cuts — finished buckets straight into `out`, the rest into scratch
/// vectors — returning the scratch buckets that still need recursion.
template <EmRecord T, typename Less>
std::vector<PendingBucket<T>> distribute_piece(
    Context& ctx, const EmVector<T>& src, std::size_t first, std::size_t last,
    std::span<const std::uint64_t> ranks, EmVector<T>& out,
    std::size_t out_offset, Less less,
    std::vector<MultiPartitionSpan>& spans) {
  const std::size_t n = last - first;
  const std::size_t nr = ranks.size();
  // Each target rank contributes up to two cuts (the bucket boundaries
  // enclosing it), so the number of targets per level is half the fan-out.
  const std::size_t fan = partition_fanout<T>(ctx);
  const std::size_t d =
      std::min(nr + 1, std::max<std::size_t>(2, (fan - 1) / 2 + 1));

  // --- Cut selection, Aggarwal-Vitter style. ------------------------------
  // Compute memory-resident splitters, learn every bucket's exact cumulative
  // count in one scan, then snap the d-1 evenly spaced target ranks to the
  // nearest bucket boundaries.  A cut (cum[j], s_j) says: exactly cum[j]
  // records are <= s_j.  Cuts need no selection subroutine, their counts are
  // exact, and boundaries that are not requested ranks merely refine the
  // partitioning (the output is still ordered and contiguous per request).
  // Exactness of the *requested* ranks is realized deeper in the recursion,
  // ultimately by the in-memory sorted leaves.
  std::vector<std::uint64_t> cut_ranks;
  std::vector<T> cut_elems;
  {
    ScopedPhase phase(ctx.profile(), "mpart/cut-selection");
    auto ls = linear_splitters<T, Less>(ctx, src, first, last, less);
    const auto& sp = ls.splitters;
    auto sp_res = ctx.budget().reserve(sp.size() * sizeof(T));
    std::vector<std::uint64_t> cum(sp.size(), 0);  // cum[j] = #{e <= s_j}
    auto cum_res = ctx.budget().reserve(cum.size() * sizeof(std::uint64_t));
    {
      StreamReader<T> reader(src, first, last);
      while (!reader.done()) {
        const T e = reader.next();
        const auto it = std::lower_bound(
            sp.begin(), sp.end(), e,
            [&](const T& x, const T& y) { return less(x, y); });
        const auto j = static_cast<std::size_t>(it - sp.begin());
        if (j < cum.size()) ++cum[j];
      }
    }
    for (std::size_t j = 1; j < cum.size(); ++j) cum[j] += cum[j - 1];

    // Bracket each target with the bucket boundaries enclosing it: the
    // residual piece still containing the target is then one splitter
    // bucket — small enough that the next recursion level resolves it with
    // an in-memory sort (or a much smaller node).  A target that hits a
    // boundary exactly needs only that single cut.
    std::vector<std::size_t> picked;
    auto consider = [&](std::size_t j) {
      if (j < cum.size() && cum[j] > 0 && cum[j] < n) picked.push_back(j);
    };
    for (std::size_t q = 1; q < d; ++q) {
      const std::uint64_t target = ranks[q * nr / d];
      const auto it = std::lower_bound(cum.begin(), cum.end(), target);
      const auto j = static_cast<std::size_t>(it - cum.begin());
      consider(j);  // upper boundary (== target when it hits exactly)
      if (it == cum.end() || *it != target) {
        if (j > 0) consider(j - 1);  // lower boundary
      }
    }
    if (picked.empty()) {
      // All targets snapped to the extremes: fall back to any boundary
      // strictly inside (0, n); one exists because every bucket is smaller
      // than the piece (the piece exceeds M/3 here).
      for (std::size_t j = 0; j < cum.size(); ++j) {
        if (cum[j] > 0 && cum[j] < n) {
          picked.push_back(j);
          break;
        }
      }
      if (picked.empty()) {
        throw std::logic_error("multi_partition: no interior cut available");
      }
    }
    std::sort(picked.begin(), picked.end());
    picked.erase(std::unique(picked.begin(), picked.end()), picked.end());
    // The distribution pass affords `fan` sink streams, so at most fan-1
    // cuts; bracketing can exceed that at tiny fan (each target contributes
    // two boundaries).  Keep an evenly spaced subset — extra cuts only ever
    // refine, so dropping some costs depth, never correctness.
    if (const std::size_t max_cuts = fan - 1; picked.size() > max_cuts) {
      std::vector<std::size_t> trimmed;
      trimmed.reserve(max_cuts);
      for (std::size_t i = 0; i < max_cuts; ++i) {
        trimmed.push_back(picked[(i + 1) * picked.size() / (max_cuts + 1)]);
      }
      picked = std::move(trimmed);
    }
    for (const std::size_t j : picked) {
      cut_ranks.push_back(cum[j]);
      cut_elems.push_back(sp[j]);
    }
  }

  // --- Bucket geometry over the chosen cuts. ------------------------------
  const std::size_t nb = cut_ranks.size() + 1;
  std::vector<std::uint64_t> lo(nb), hi(nb);
  std::vector<std::size_t> ri_lo(nb), ri_hi(nb);
  {
    std::size_t i = 0;
    for (std::size_t q = 0; q < nb; ++q) {
      lo[q] = q == 0 ? 0 : cut_ranks[q - 1];
      hi[q] = q == nb - 1 ? n : cut_ranks[q];
      while (i < nr && ranks[i] <= lo[q]) ++i;  // == lo: satisfied by a cut
      ri_lo[q] = i;
      while (i < nr && ranks[i] < hi[q]) ++i;
      ri_hi[q] = i;
    }
  }

  // --- Distribution pass. --------------------------------------------------
  // Leaf buckets (no interior ranks) go straight to the output; the rest
  // land in scratch vectors for recursion.
  std::vector<BucketSink<T>> sinks(nb);
  {
    ScopedPhase phase(ctx.profile(), "mpart/distribute");
    auto piv_res = ctx.budget().reserve(cut_elems.size() * sizeof(T));
    for (std::size_t q = 0; q < nb; ++q) {
      sinks[q].expected = hi[q] - lo[q];
      if (ri_lo[q] == ri_hi[q]) {
        sinks[q].direct_writer = std::make_unique<RangeWriter<T>>(
            out, out_offset + static_cast<std::size_t>(lo[q]));
        // A direct bucket is a realized run too — it just never reaches a
        // leaf of the recursion, so record its span here.
        if (hi[q] > lo[q]) {
          spans.push_back({out_offset + lo[q], out_offset + hi[q], false});
        }
      } else {
        sinks[q].scratch =
            EmVector<T>(ctx, static_cast<std::size_t>(hi[q] - lo[q]));
        sinks[q].scratch_writer =
            std::make_unique<StreamWriter<T>>(sinks[q].scratch);
      }
    }
    // Pivot classification is data-parallel over each resident block batch:
    // lanes fill a per-record bucket-index array concurrently, then the main
    // thread pushes the records in stream order — the sink push sequence
    // (and hence every write) is identical to the serial loop's for any
    // thread count.  The index array is optional scratch: when the budget
    // is too tight next to the sink buffers (or the batch is too small to
    // pay for a dispatch), the per-record serial path runs instead.
    auto classify = [&](const T& e) {
      const auto it = std::lower_bound(
          cut_elems.begin(), cut_elems.end(), e,
          [&](const T& p, const T& x) { return less(p, x); });
      return static_cast<std::size_t>(it - cut_elems.begin());
    };
    ThreadPool* pool = ctx.cpu_pool();
    LaneScratch<std::uint32_t> idx(
        ctx, pool != nullptr
                 ? ctx.io_tuning().batch_blocks * ctx.block_records<T>()
                 : 0);
    StreamReader<T> reader(src, first, last);
    while (!reader.done()) {
      const std::span<const T> sp = reader.peek_span();
      if (sp.size() >= kClassifyGrain && sp.size() <= idx.size()) {
        const std::size_t lanes = ctx.cpu_lanes();
        pool->run(lanes, [&](std::size_t t) {
          const std::size_t beg = sp.size() * t / lanes;
          const std::size_t end = sp.size() * (t + 1) / lanes;
          for (std::size_t i = beg; i < end; ++i) {
            idx[i] = static_cast<std::uint32_t>(classify(sp[i]));
          }
        });
        for (std::size_t i = 0; i < sp.size(); ++i) sinks[idx[i]].push(sp[i]);
      } else {
        for (const T& e : sp) sinks[classify(e)].push(e);
      }
      reader.consume(sp.size());
    }
    for (auto& sink : sinks) {
      sink.finish();
      // Release every writer's block buffer before recursing: only the
      // scratch vectors themselves (device extents, no memory) survive.
      sink.scratch_writer.reset();
      sink.direct_writer.reset();
    }
  }

  std::vector<PendingBucket<T>> pending;
  for (std::size_t q = 0; q < nb; ++q) {
    if (!sinks[q].scratch.bound()) continue;
    if (sinks[q].scratch.size() != hi[q] - lo[q]) {
      throw std::logic_error(
          "multi_partition: cut counts inconsistent with data (is the "
          "comparator a strict total order?)");
    }
    PendingBucket<T> pb;
    pb.scratch = std::move(sinks[q].scratch);
    pb.ranks.assign(ranks.begin() + static_cast<std::ptrdiff_t>(ri_lo[q]),
                    ranks.begin() + static_cast<std::ptrdiff_t>(ri_hi[q]));
    for (auto& r : pb.ranks) r -= lo[q];
    pb.out_lo = out_offset + lo[q];
    pending.push_back(std::move(pb));
  }
  return pending;
}

/// Job fingerprint for the partition checkpoint (see sort_fingerprint):
/// digests the piece, the geometry and every requested rank.
template <EmRecord T>
std::uint64_t part_fingerprint(const Context& ctx, std::size_t first,
                               std::size_t n,
                               std::span<const std::uint64_t> ranks) {
  std::uint64_t h = fingerprint_mix(kFingerprintSeed, 0x4D504152);  // "MPAR"
  h = fingerprint_mix(h, first);
  h = fingerprint_mix(h, n);
  h = fingerprint_mix(h, sizeof(T));
  h = fingerprint_mix(h, ctx.block_records<T>());
  h = fingerprint_mix(h, ctx.stream_blocks());
  h = fingerprint_mix(h, ctx.mem_records<T>());
  h = fingerprint_mix(h, ranks.size());
  for (const auto r : ranks) h = fingerprint_mix(h, r);
  return h;
}

}  // namespace detail

/// Multi-partition records [first, last) of `input` at `split_ranks`
/// (1-based relative ranks, strictly increasing, each in (0, last-first)).
/// Returns the permuted data and K+1 partition bounds.  The input is left
/// untouched.  Cost: O((n/B) log_{M/B} K) I/Os.
///
/// Memory floor: a distribution level needs two sink buffers, a reader, the
/// transient edge-merge block and the cut table — at least 5 blocks of
/// memory in practice (the model's bare M >= 2B admits scanning but not
/// partitioning).  Smaller budgets fail fast with BudgetExceeded.
///
/// With a CheckpointJournal attached to the context, the root distribution
/// pass and each root bucket's completed subtree are published to the
/// journal, and a rerun of the identical job resumes from the journaled
/// state with bit-identical output, repaying only the interrupted work.
/// Without a journal this is exactly the seed code path.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] MultiPartitionResult<T> multi_partition(
    Context& ctx, const EmVector<T>& input, std::size_t first,
    std::size_t last, const std::vector<std::uint64_t>& split_ranks,
    Less less = {}) {
  const std::size_t n = last - first;
  if (!std::is_sorted(split_ranks.begin(), split_ranks.end()) ||
      std::adjacent_find(split_ranks.begin(), split_ranks.end()) !=
          split_ranks.end()) {
    throw std::invalid_argument(
        "multi_partition: split ranks must be strictly increasing");
  }
  if (!split_ranks.empty() &&
      (split_ranks.front() == 0 || split_ranks.back() >= n)) {
    throw std::invalid_argument(
        "multi_partition: split ranks must lie strictly inside (0, n)");
  }

  // With workers configured and the whole vector as the piece, the job runs
  // as the distributed protocol (dist/distributed.hpp): same realized ranks
  // and output bytes for every W, journaled under a W-free fingerprint.
  // Nested pieces, empty rank lists and unsupported geometry fall through
  // to the classic recursion.
  if (first == 0 && last == input.size() && !split_ranks.empty() &&
      dist::dist_supported<T>(ctx, n, split_ranks.size())) {
    dist::DistResult<T> d =
        dist::dist_multi_partition<T, Less>(ctx, input, split_ranks, less);
    MultiPartitionResult<T> result;
    result.data = std::move(d.data);
    result.bounds = std::move(d.bounds);
    result.spans.reserve(d.spans.size());
    for (const dist::DistSpan& s : d.spans) {
      result.spans.push_back({s.lo, s.hi, s.sorted});
    }
    return result;
  }

  MultiPartitionResult<T> result;
  CheckpointJournal* ckpt = ctx.checkpoint();
  // Only a root that actually distributes is worth journaling: a leaf root
  // (no ranks, or a piece an in-memory sort resolves) is one cheap pass.
  const bool root_distributes =
      ckpt != nullptr && !split_ranks.empty() && n > ctx.mem_records<T>() / 3;
  if (root_distributes) {
    // The worklist lifecycle lives in the pass engine: the root distribution
    // is one published pass, every scratch bucket's subtree one published
    // item — a crash resumes from the journaled worklist instead of
    // redistributing, repaying only the interrupted item.
    PassRunner runner(
        ctx,
        {"mpart", detail::part_fingerprint<T>(ctx, first, n, split_ranks)});
    DistributionCheckpoint<T> dc(runner, "mpart/resume");
    if (!dc.resumed()) {
      EmVector<T> out(ctx, n);
      std::vector<MultiPartitionSpan> root_spans;
      auto pending = runner.run("mpart/root-distribute", [&] {
        return detail::distribute_piece<T, Less>(
            ctx, input, first, last, split_ranks, out, 0, less, root_spans);
      });
      dc.publish_root(std::move(out), n, std::move(pending),
                      to_ckpt_spans(root_spans));
    }

    // Replay what the journal already holds, then run the remaining
    // buckets' subtrees, publishing each completion.
    EmVector<T> out_view = dc.adopt_out();
    const auto& st = dc.state();
    result.spans.reserve(st.spans.size());
    for (const auto& s : st.spans) {
      result.spans.push_back({s.lo, s.hi, s.sorted});
    }
    for (std::size_t q = 0; q < st.buckets.size(); ++q) {
      const auto& bk = st.buckets[q];
      if (bk.done) continue;
      EmVector<T> view = dc.adopt_item(q);
      std::vector<MultiPartitionSpan> bspans;
      runner.run("mpart/bucket-subtree", [&] {
        detail::partition_node<T, Less>(
            ctx, &view, 0, static_cast<std::size_t>(bk.size), EmVector<T>{},
            bk.ranks, out_view, static_cast<std::size_t>(bk.out_lo), less,
            bspans);
      });
      dc.publish_item_done(q, to_ckpt_spans(bspans));
      result.spans.insert(result.spans.end(), bspans.begin(), bspans.end());
    }
    result.data =
        EmVector<T>::adopt(ctx, dc.take_out(), n, /*owning=*/true);
  } else {
    result.data = EmVector<T>(ctx, n);
    PassRunner runner(ctx, {"mpart", 0});
    runner.run("mpart/recursive-partition", [&] {
      detail::partition_node<T, Less>(ctx, &input, first, last, EmVector<T>{},
                                      split_ranks, result.data, 0, less,
                                      result.spans);
    });
    result.data.set_size(n);
  }
  std::sort(result.spans.begin(), result.spans.end(),
            [](const MultiPartitionSpan& a, const MultiPartitionSpan& b) {
              return a.lo < b.lo;
            });
  result.bounds.reserve(split_ranks.size() + 2);
  result.bounds.push_back(0);
  result.bounds.insert(result.bounds.end(), split_ranks.begin(),
                       split_ranks.end());
  result.bounds.push_back(n);
  return result;
}

/// Whole-vector convenience overload.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] MultiPartitionResult<T> multi_partition(
    Context& ctx, const EmVector<T>& input,
    const std::vector<std::uint64_t>& split_ranks, Less less = {}) {
  return multi_partition<T, Less>(ctx, input, 0, input.size(), split_ranks,
                                  less);
}

/// Multi-partition by sizes — the paper's literal §1.1 interface: K-1 given
/// sizes σ_1..σ_{K-1} (the K-th is implied).  Equivalent to split ranks at
/// the prefix sums; every σ_i must be positive and they must sum to < n.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] MultiPartitionResult<T> multi_partition_sizes(
    Context& ctx, const EmVector<T>& input,
    const std::vector<std::uint64_t>& sizes, Less less = {}) {
  std::vector<std::uint64_t> ranks;
  ranks.reserve(sizes.size());
  std::uint64_t acc = 0;
  for (const auto s : sizes) {
    if (s == 0) {
      throw std::invalid_argument(
          "multi_partition_sizes: sizes must be positive");
    }
    acc += s;
    ranks.push_back(acc);
  }
  return multi_partition<T, Less>(ctx, input, ranks, less);
}

/// Precise K-partitioning (paper §3): split into K partitions of exactly
/// n/K records each.  Requires K to divide the range length.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] MultiPartitionResult<T> precise_partition(Context& ctx,
                                                        const EmVector<T>& input,
                                                        std::size_t k,
                                                        Less less = {}) {
  const std::size_t n = input.size();
  if (k == 0 || n % k != 0) {
    throw std::invalid_argument(
        "precise_partition: K must be positive and divide N");
  }
  std::vector<std::uint64_t> ranks(k - 1);
  for (std::size_t i = 1; i < k; ++i) ranks[i - 1] = i * (n / k);
  return multi_partition<T, Less>(ctx, input, ranks, less);
}

}  // namespace emsplit

// sort_baseline.hpp — the trivial sort-everything baselines (paper §1.2).
//
// Every problem in the paper is solvable by one external sort in
// Θ((N/B) log_{M/B}(N/B)) I/Os plus a cheap post-pass.  These baselines are
// what every experiment compares against: the paper's contribution is
// precisely the gap between these costs and the specialized algorithms.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/partitioning.hpp"
#include "core/spec.hpp"
#include "em/context.hpp"
#include "em/em_vector.hpp"
#include "em/stream.hpp"
#include "sort/external_sort.hpp"

namespace emsplit {

/// Multi-selection by sorting: sort S, then jump-read the target ranks.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] std::vector<T> sort_multi_select(
    Context& ctx, const EmVector<T>& input,
    const std::vector<std::uint64_t>& ranks, Less less = {}) {
  auto sorted = external_sort<T, Less>(ctx, input, less);
  std::vector<T> out;
  out.reserve(ranks.size());
  for (const auto r : ranks) {
    StreamReader<T> reader(sorted, static_cast<std::size_t>(r - 1),
                           static_cast<std::size_t>(r));
    out.push_back(reader.next());
  }
  return out;
}

/// Approximate K-splitters by sorting: sort S, read the (1/K)-quantile
/// (always a valid answer whenever a <= floor(N/K) and ceil(N/K) <= b).
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] std::vector<T> sort_splitters(Context& ctx,
                                            const EmVector<T>& input,
                                            const ApproxSpec& spec,
                                            Less less = {}) {
  const std::uint64_t n = input.size();
  validate_spec(n, spec);
  auto sorted = external_sort<T, Less>(ctx, input, less);
  std::vector<T> out;
  out.reserve(static_cast<std::size_t>(spec.k - 1));
  for (std::uint64_t i = 1; i < spec.k; ++i) {
    const std::uint64_t r = i * n / spec.k;
    StreamReader<T> reader(sorted, static_cast<std::size_t>(r - 1),
                           static_cast<std::size_t>(r));
    out.push_back(reader.next());
  }
  return out;
}

/// Approximate K-partitioning by sorting: the sorted vector with quantile
/// bounds is a valid (indeed perfectly balanced) partitioning.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] ApproxPartitioning<T> sort_partitioning(Context& ctx,
                                                      const EmVector<T>& input,
                                                      const ApproxSpec& spec,
                                                      Less less = {}) {
  const std::uint64_t n = input.size();
  validate_spec(n, spec);
  ApproxPartitioning<T> out;
  out.data = external_sort<T, Less>(ctx, input, less);
  out.bounds.push_back(0);
  for (std::uint64_t i = 1; i < spec.k; ++i) {
    out.bounds.push_back(i * n / spec.k);
  }
  out.bounds.push_back(n);
  return out;
}

/// Multi-selection by K independent single-rank selections — the "no
/// batching" strawman: O(K * N/B) I/Os.  Theorem 4's batching beats this by
/// a factor K / log_{M/B}(K/B); bench E7 sweeps the gap.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] std::vector<T> naive_multi_select(
    Context& ctx, const EmVector<T>& input,
    const std::vector<std::uint64_t>& ranks, Less less = {}) {
  std::vector<T> out;
  out.reserve(ranks.size());
  for (const auto r : ranks) {
    out.push_back(select_rank<T, Less>(ctx, input, r, less));
  }
  return out;
}

}  // namespace emsplit

// quantile_sketch.hpp — one-pass merge-collapse quantile summary
// (Munro–Paterson / MRL style), the streaming baseline for the splitters
// problem.
//
// This is what practice reaches for when it wants nearly-equi-depth bucket
// boundaries of a big file: one read-only scan, memory-resident summary,
// answers any quantile afterwards.  Its guarantee is weaker than approximate
// K-splitters': rank error grows with the number of collapse levels
// (ε ≈ L / (2k) per element with buffer size k and L = log2(n/k) levels),
// so bucket sizes are only approximately bounded — no hard [a, b] promise.
// Experiment E14 measures both cost and quality against approx_splitters.
//
// Structure: a binomial-heap-like set of sorted buffers.  Each buffer holds
// exactly `k` records and carries weight 2^level.  New records fill a
// level-0 staging buffer; whenever two buffers share a level they collapse:
// merge the 2k records, keep alternating elements (odd positions on odd
// collapses, even on even, halving the systematic bias), at level + 1.
// A rank query sums weights of summary elements below the probe.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "em/context.hpp"
#include "em/em_vector.hpp"
#include "em/stream.hpp"

namespace emsplit {

template <EmRecord T, typename Less = std::less<T>>
class QuantileSketch {
 public:
  /// `buffer_records` is k, the size of one buffer.  Total memory grows by
  /// one buffer per level, reserved against the budget as levels appear.
  QuantileSketch(Context& ctx, std::size_t buffer_records, Less less = {})
      : ctx_(&ctx), k_(buffer_records), less_(less) {
    if (k_ < 2) {
      throw std::invalid_argument("QuantileSketch: buffer_records must be >= 2");
    }
    staging_res_ = ctx_->budget().reserve(k_ * sizeof(T));
    staging_.reserve(k_);
  }

  /// Number of records summarized so far.
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  /// Summary footprint in records (all live buffers + staging).
  [[nodiscard]] std::size_t footprint_records() const noexcept {
    return (buffers_.size() + 1) * k_;
  }

  void insert(const T& v) {
    staging_.push_back(v);
    ++count_;
    if (staging_.size() == k_) flush_staging();
  }

  /// Rank estimate: approximate #{e <= probe} among all inserted records.
  [[nodiscard]] std::uint64_t estimate_rank(const T& probe) const {
    std::uint64_t rank = 0;
    for (const auto& buf : buffers_) {
      const auto it = std::upper_bound(
          buf.records.begin(), buf.records.end(), probe,
          [&](const T& x, const T& y) { return less_(x, y); });
      rank += static_cast<std::uint64_t>(it - buf.records.begin())
              << buf.level;
    }
    // Staging records count with weight 1.
    for (const auto& e : staging_) {
      if (!less_(probe, e)) ++rank;
    }
    return rank;
  }

  /// The K-1 approximate (1/K)-quantile boundaries, ascending.
  [[nodiscard]] std::vector<T> quantiles(std::uint64_t parts) const {
    if (parts == 0) {
      throw std::invalid_argument("QuantileSketch: parts must be >= 1");
    }
    // Weighted merge of all buffers (CPU-side; the summary is in memory).
    std::vector<std::pair<T, std::uint64_t>> weighted;
    for (const auto& buf : buffers_) {
      for (const auto& e : buf.records) {
        weighted.emplace_back(e, 1ULL << buf.level);
      }
    }
    for (const auto& e : staging_) weighted.emplace_back(e, 1);
    std::sort(weighted.begin(), weighted.end(),
              [&](const auto& x, const auto& y) {
                return less_(x.first, y.first);
              });
    std::vector<T> out;
    out.reserve(static_cast<std::size_t>(parts - 1));
    std::uint64_t acc = 0;
    std::size_t i = 0;
    for (std::uint64_t q = 1; q < parts; ++q) {
      const std::uint64_t target = q * count_ / parts;
      while (i < weighted.size() && acc + weighted[i].second <= target) {
        acc += weighted[i].second;
        ++i;
      }
      out.push_back(weighted[std::min(i, weighted.size() - 1)].first);
    }
    return out;
  }

 private:
  struct Buffer {
    std::uint32_t level = 0;
    std::vector<T> records;  // sorted, exactly k entries
    MemoryReservation reservation;
  };

  void flush_staging() {
    std::sort(staging_.begin(), staging_.end(), less_);
    Buffer b{0, std::move(staging_), ctx_->budget().reserve(k_ * sizeof(T))};
    staging_ = {};
    staging_.reserve(k_);
    insert_buffer(std::move(b));
  }

  void insert_buffer(Buffer b) {
    for (;;) {
      auto same = std::find_if(
          buffers_.begin(), buffers_.end(),
          [&](const Buffer& o) { return o.level == b.level; });
      if (same == buffers_.end()) break;
      b = collapse(std::move(*same), std::move(b));
      buffers_.erase(same);
    }
    buffers_.push_back(std::move(b));
  }

  /// Merge two k-buffers at one level into one k-buffer one level up.
  Buffer collapse(Buffer x, Buffer y) {
    std::vector<T> merged(2 * k_);
    std::merge(x.records.begin(), x.records.end(), y.records.begin(),
               y.records.end(), merged.begin(), less_);
    std::vector<T> kept;
    kept.reserve(k_);
    // Alternate the parity of the kept positions to halve systematic bias.
    const std::size_t offset = (collapse_parity_ ^= 1);
    for (std::size_t i = offset; i < merged.size(); i += 2) {
      kept.push_back(merged[i]);
    }
    kept.resize(k_);
    return Buffer{x.level + 1, std::move(kept), std::move(x.reservation)};
  }

  Context* ctx_;
  std::size_t k_;
  Less less_;
  std::uint64_t count_ = 0;
  std::size_t collapse_parity_ = 0;
  std::vector<T> staging_;
  MemoryReservation staging_res_;
  std::vector<Buffer> buffers_;
};

/// Build a sketch of an external vector with one scan.  The buffer size is
/// chosen so that the summary plus the scan buffer fit inside the budget at
/// the deepest expected level count.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] QuantileSketch<T, Less> sketch_vector(Context& ctx,
                                                    const EmVector<T>& input,
                                                    Less less = {}) {
  // Levels <= log2(n/k) + 2; solve k * (levels + 2) * sizeof(T) <= M/2
  // crudely by fixing levels' upper estimate from n and M.
  const std::size_t mem = ctx.mem_records<T>();
  std::size_t levels = 2;
  for (std::size_t n = input.size(); (n >> levels) > mem; ++levels) {
  }
  const std::size_t k =
      std::max<std::size_t>(2, mem / (2 * (levels + 4)));
  QuantileSketch<T, Less> sketch(ctx, k, less);
  StreamReader<T> reader(input);
  while (!reader.done()) sketch.insert(reader.next());
  return sketch;
}

}  // namespace emsplit

// rng.hpp — small deterministic PRNG for workload generation.
//
// SplitMix64: tiny state, excellent statistical quality for data generation,
// and — unlike std::mt19937 — identical output across standard libraries, so
// benches and tests are reproducible byte-for-byte anywhere.
#pragma once

#include <cstdint>

namespace emsplit {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound) without modulo bias worth caring about here.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    return bound == 0 ? 0 : next() % bound;
  }

 private:
  std::uint64_t state_;
};

}  // namespace emsplit

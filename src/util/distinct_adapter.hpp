// distinct_adapter.hpp — total-order wrapper for multiset inputs.
//
// The paper assumes elements drawn from an ordered domain — effectively a
// strict total order (its selection machinery relies on every pivot
// strictly shrinking the candidate set).  Real data has duplicates.  This
// adapter realizes the standard fix: tag every record with its position in
// the input, order lexicographically by (record, tag), and strip the tags
// from results.  One linear pass each way; all rank semantics become the
// "stable" ones (among equal records, earlier input positions rank lower).
//
// Use it whenever the record type's comparator may declare two records
// equivalent (e.g. raw uint64_t keys with repeats).  The shipped `Record`
// type usually does not need it — its payload already breaks ties — but
// nothing stops a workload from repeating whole records.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "em/context.hpp"
#include "em/em_vector.hpp"
#include "em/stream.hpp"

namespace emsplit {

/// A record extended with an input-position tag; the tag breaks ties.
template <EmRecord T>
struct Tagged {
  T value{};
  std::uint64_t tag = 0;

  friend constexpr bool operator==(const Tagged&, const Tagged&) = default;
};

/// Strict-weak comparator on Tagged<T> induced by `Less` on T, with the tag
/// as tiebreaker — a strict total order whenever tags are distinct.
template <typename T, typename Less = std::less<T>>
struct TaggedLess {
  Less less{};
  constexpr bool operator()(const Tagged<T>& x, const Tagged<T>& y) const {
    if (less(x.value, y.value)) return true;
    if (less(y.value, x.value)) return false;
    return x.tag < y.tag;
  }
};

/// Produce the tagged copy of `input` in one scan: record i gets tag i.
template <EmRecord T>
[[nodiscard]] EmVector<Tagged<T>> tag_records(Context& ctx,
                                              const EmVector<T>& input) {
  EmVector<Tagged<T>> out(ctx, input.size());
  StreamReader<T> reader(input);
  StreamWriter<Tagged<T>> writer(out);
  std::uint64_t tag = 0;
  while (!reader.done()) {
    writer.push(Tagged<T>{reader.next(), tag++});
  }
  writer.finish();
  return out;
}

/// Strip tags from a tagged vector in one scan.
template <EmRecord T>
[[nodiscard]] EmVector<T> untag_records(Context& ctx,
                                        const EmVector<Tagged<T>>& input) {
  EmVector<T> out(ctx, input.size());
  StreamReader<Tagged<T>> reader(input);
  StreamWriter<T> writer(out);
  while (!reader.done()) writer.push(reader.next().value);
  writer.finish();
  return out;
}

/// Strip tags from host-side results (splitters, selections).
template <EmRecord T>
[[nodiscard]] std::vector<T> untag_values(const std::vector<Tagged<T>>& v) {
  std::vector<T> out;
  out.reserve(v.size());
  for (const auto& t : v) out.push_back(t.value);
  return out;
}

}  // namespace emsplit

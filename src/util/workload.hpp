// workload.hpp — input generators for tests, benches and examples.
//
// Each generator returns host-side records (materialize() moves them to a
// device).  The shapes cover the standard adversaries for order-based
// algorithms, plus the paper's own hard-instance family:
//
//   * Uniform       — random distinct keys.
//   * Sorted        — already in order (best case for scans, stresses pivot
//                     degeneracy in selection).
//   * Reverse       — descending.
//   * FewDistinct   — d distinct keys with payload tie-breaking (duplicate
//                     torture; the paper assumes distinctness, the library
//                     handles ties through the total order on Record).
//   * OrganPipe     — ascending then descending.
//   * Zipfian       — heavily skewed key frequencies.
//   * BlockStriped  — the lower-bound family Π_hard of §2.1: element i of
//                     every block is smaller than element j>i of every block;
//                     within a stripe, order is random.  Worst case for
//                     anything that hopes blocks arrive pre-sorted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/record.hpp"

namespace emsplit {

enum class Workload {
  kUniform,
  kSorted,
  kReverse,
  kFewDistinct,
  kOrganPipe,
  kZipfian,
  kBlockStriped,
};

/// All shapes, for parameterized sweeps.
[[nodiscard]] const std::vector<Workload>& all_workloads();

[[nodiscard]] std::string to_string(Workload w);

/// Generate `n` records of the given shape.
///
/// `block_records` is only used by kBlockStriped (stripe width = the device
/// block size in records); other shapes ignore it.  `distinct_keys` is only
/// used by kFewDistinct / kZipfian.  Every generator is deterministic in
/// `seed`.
[[nodiscard]] std::vector<Record> make_workload(Workload w, std::size_t n,
                                                std::uint64_t seed,
                                                std::size_t block_records = 64,
                                                std::size_t distinct_keys = 16);

}  // namespace emsplit

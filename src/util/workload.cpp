#include "util/workload.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

#include "util/rng.hpp"

namespace emsplit {

std::ostream& operator<<(std::ostream& os, const Record& r) {
  return os << "(" << r.key << "," << r.payload << ")";
}

const std::vector<Workload>& all_workloads() {
  static const std::vector<Workload> kAll = {
      Workload::kUniform,   Workload::kSorted,    Workload::kReverse,
      Workload::kFewDistinct, Workload::kOrganPipe, Workload::kZipfian,
      Workload::kBlockStriped,
  };
  return kAll;
}

std::string to_string(Workload w) {
  switch (w) {
    case Workload::kUniform: return "uniform";
    case Workload::kSorted: return "sorted";
    case Workload::kReverse: return "reverse";
    case Workload::kFewDistinct: return "few_distinct";
    case Workload::kOrganPipe: return "organ_pipe";
    case Workload::kZipfian: return "zipfian";
    case Workload::kBlockStriped: return "block_striped";
  }
  return "unknown";
}

namespace {

// Fisher–Yates with our deterministic PRNG.
void shuffle(std::vector<Record>& v, SplitMix64& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::swap(v[i - 1], v[rng.next_below(i)]);
  }
}

// Distinct random-looking keys: a random permutation of 0..n-1 scaled by a
// stride, so ranks are easy to reason about in tests while keys look random
// on the wire.
std::vector<Record> uniform(std::size_t n, SplitMix64& rng) {
  std::vector<Record> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = Record{.key = i * 2654435761ULL % (n * 4 + 1), .payload = i};
  }
  // Keys above may collide after the modulus; payload keeps the order total.
  shuffle(v, rng);
  return v;
}

std::vector<Record> sorted(std::size_t n) {
  std::vector<Record> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = Record{.key = i, .payload = i};
  return v;
}

std::vector<Record> reversed(std::size_t n) {
  std::vector<Record> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = Record{.key = n - 1 - i, .payload = i};
  }
  return v;
}

std::vector<Record> few_distinct(std::size_t n, std::size_t d,
                                 SplitMix64& rng) {
  if (d == 0) throw std::invalid_argument("few_distinct: d must be positive");
  std::vector<Record> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = Record{.key = rng.next_below(d), .payload = i};
  }
  return v;
}

std::vector<Record> organ_pipe(std::size_t n) {
  std::vector<Record> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t half = n / 2;
    v[i] = Record{.key = i < half ? i : n - 1 - i, .payload = i};
  }
  return v;
}

std::vector<Record> zipfian(std::size_t n, std::size_t d, SplitMix64& rng) {
  if (d == 0) throw std::invalid_argument("zipfian: d must be positive");
  // Inverse-CDF sampling of a Zipf(s=1.1) distribution over d keys, using a
  // precomputed cumulative table (d is small in every sweep we run).
  std::vector<double> cdf(d);
  double sum = 0.0;
  for (std::size_t k = 0; k < d; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), 1.1);
    cdf[k] = sum;
  }
  std::vector<Record> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u =
        sum * (static_cast<double>(rng.next() >> 11) * 0x1.0p-53);
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    v[i] = Record{
        .key = static_cast<std::uint64_t>(std::distance(cdf.begin(), it)),
        .payload = i};
  }
  return v;
}

// The hard-permutation family Π_hard from the paper's lower-bound proofs:
// conceptually, stripe i (the i-th record of every block) is entirely smaller
// than stripe j for i < j.  Keys are assigned so that stripes are ordered and
// the order within a stripe is a random permutation.
std::vector<Record> block_striped(std::size_t n, std::size_t block_records,
                                  SplitMix64& rng) {
  if (block_records == 0) {
    throw std::invalid_argument("block_striped: block_records must be > 0");
  }
  const std::size_t num_blocks = (n + block_records - 1) / block_records;
  // Per-stripe random permutations of block indices.
  std::vector<Record> v(n);
  std::vector<std::uint64_t> perm(num_blocks);
  std::uint64_t next_key = 0;
  for (std::size_t stripe = 0; stripe < block_records; ++stripe) {
    std::size_t stripe_len = 0;
    for (std::size_t blk = 0; blk < num_blocks; ++blk) {
      if (blk * block_records + stripe < n) perm[stripe_len++] = blk;
    }
    for (std::size_t i = stripe_len; i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.next_below(i)]);
    }
    // perm[r] = block that gets the r-th smallest key of this stripe.
    for (std::size_t r = 0; r < stripe_len; ++r) {
      const std::size_t pos = perm[r] * block_records + stripe;
      v[pos] = Record{.key = next_key++, .payload = pos};
    }
  }
  return v;
}

}  // namespace

std::vector<Record> make_workload(Workload w, std::size_t n,
                                  std::uint64_t seed,
                                  std::size_t block_records,
                                  std::size_t distinct_keys) {
  SplitMix64 rng(seed ^ 0x5eed5eed5eed5eedULL);
  switch (w) {
    case Workload::kUniform: return uniform(n, rng);
    case Workload::kSorted: return sorted(n);
    case Workload::kReverse: return reversed(n);
    case Workload::kFewDistinct: return few_distinct(n, distinct_keys, rng);
    case Workload::kOrganPipe: return organ_pipe(n);
    case Workload::kZipfian: return zipfian(n, distinct_keys, rng);
    case Workload::kBlockStriped: return block_striped(n, block_records, rng);
  }
  throw std::invalid_argument("make_workload: unknown workload");
}

}  // namespace emsplit

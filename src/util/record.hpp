// record.hpp — the record types the library ships instantiations for.
//
// All algorithms are comparison-based templates over any trivially-copyable
// record type with a strict total order.  The paper assumes an ordered domain
// with distinct elements; `Record` realizes that via a (key, payload) pair
// ordered lexicographically, so workloads with duplicate keys still form a
// total order (the payload doubles as a tie-breaker and as the "satellite
// data" the indivisibility assumption is about).
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>

namespace emsplit {

struct Record {
  std::uint64_t key = 0;
  std::uint64_t payload = 0;

  friend constexpr auto operator<=>(const Record&, const Record&) = default;
};

static_assert(sizeof(Record) == 16);

std::ostream& operator<<(std::ostream& os, const Record& r);

}  // namespace emsplit

// verify.hpp — checked validation of splitters / partitioning outputs.
//
// These routines re-derive, from the input data alone, whether a claimed
// solution satisfies the problem definition (§1 of the paper).  They are
// used by the test suite, the examples and the bench harness; they run
// outside the EM cost model (verification is the experimenter's tool, not
// part of the measured algorithm).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "core/spec.hpp"
#include "em/em_vector.hpp"
#include "em/stream.hpp"

namespace emsplit {

struct VerifyResult {
  bool ok = true;
  std::string reason;
  /// Sizes of the K buckets / partitions that were checked.
  std::vector<std::uint64_t> sizes;

  explicit operator bool() const noexcept { return ok; }
};

namespace detail {

inline VerifyResult verify_fail(std::string reason) {
  VerifyResult r;
  r.ok = false;
  r.reason = std::move(reason);
  return r;
}

}  // namespace detail

/// Check an approximate K-splitters answer: splitters strictly increasing,
/// every splitter an element of `input`, and every induced bucket size in
/// [a, b].  K = splitters.size() + 1.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] VerifyResult verify_splitters(const EmVector<T>& input,
                                            const std::vector<T>& splitters,
                                            const ApproxSpec& spec,
                                            Less less = {}) {
  if (splitters.size() + 1 != spec.k) {
    return detail::verify_fail("expected K-1 = " + std::to_string(spec.k - 1) +
                               " splitters, got " +
                               std::to_string(splitters.size()));
  }
  for (std::size_t i = 0; i + 1 < splitters.size(); ++i) {
    if (!less(splitters[i], splitters[i + 1])) {
      return detail::verify_fail("splitters not strictly increasing at " +
                                 std::to_string(i));
    }
  }
  VerifyResult r;
  r.sizes.assign(splitters.size() + 1, 0);
  std::vector<bool> seen(splitters.size(), false);
  StreamReader<T> reader(input);
  while (!reader.done()) {
    const T e = reader.next();
    const auto it = std::lower_bound(
        splitters.begin(), splitters.end(), e,
        [&](const T& s, const T& x) { return less(s, x); });
    ++r.sizes[static_cast<std::size_t>(it - splitters.begin())];
    if (it != splitters.end() && !less(e, *it) && !less(*it, e)) {
      seen[static_cast<std::size_t>(it - splitters.begin())] = true;
    }
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    if (!seen[i]) {
      return detail::verify_fail("splitter " + std::to_string(i) +
                                 " is not an element of the input");
    }
  }
  for (std::size_t i = 0; i < r.sizes.size(); ++i) {
    if (r.sizes[i] < spec.a || r.sizes[i] > spec.b) {
      std::ostringstream os;
      os << "bucket " << i << " has size " << r.sizes[i] << " outside ["
         << spec.a << ", " << spec.b << "]";
      return detail::verify_fail(os.str());
    }
  }
  return r;
}

/// Check an approximate K-partitioning answer against the original input:
/// K partitions with sizes in [a, b], strictly ordered across partitions
/// (max of partition i < min of partition i+1 over non-empty neighbours),
/// and `data` a permutation of `original` (multiset equality).
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] VerifyResult verify_partitioning(
    const EmVector<T>& original, const EmVector<T>& data,
    const std::vector<std::uint64_t>& bounds, const ApproxSpec& spec,
    Less less = {}) {
  if (bounds.size() != spec.k + 1) {
    return detail::verify_fail("expected K+1 = " + std::to_string(spec.k + 1) +
                               " bounds, got " + std::to_string(bounds.size()));
  }
  if (bounds.front() != 0 || bounds.back() != original.size() ||
      data.size() != original.size()) {
    return detail::verify_fail("bounds do not cover the data");
  }
  VerifyResult r;
  bool have_prev = false;
  T prev_max{};
  StreamReader<T> reader(data);
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    if (bounds[i] > bounds[i + 1]) {
      return detail::verify_fail("bounds not monotone at " + std::to_string(i));
    }
    const std::uint64_t size = bounds[i + 1] - bounds[i];
    r.sizes.push_back(size);
    if (size < spec.a || size > spec.b) {
      std::ostringstream os;
      os << "partition " << i << " has size " << size << " outside ["
         << spec.a << ", " << spec.b << "]";
      return detail::verify_fail(os.str());
    }
    if (size == 0) continue;
    T lo = reader.next();
    T hi = lo;
    for (std::uint64_t j = 1; j < size; ++j) {
      const T e = reader.next();
      lo = std::min(lo, e, less);
      hi = std::max(hi, e, less);
    }
    if (have_prev && !less(prev_max, lo)) {
      return detail::verify_fail("partition " + std::to_string(i) +
                                 " overlaps its predecessor in the order");
    }
    prev_max = hi;
    have_prev = true;
  }

  // Multiset equality (host-side oracle).
  auto x = to_host(original);
  auto y = to_host(data);
  std::sort(x.begin(), x.end(), less);
  std::sort(y.begin(), y.end(), less);
  if (x != y) {
    return detail::verify_fail("output is not a permutation of the input");
  }
  return r;
}

}  // namespace emsplit

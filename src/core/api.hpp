// api.hpp — the emsplit public API, one include.
//
//   #include "core/api.hpp"
//
//   using namespace emsplit;
//   MemoryBlockDevice dev(/*block_bytes=*/4096);
//   Context ctx(dev, /*mem_bytes=*/1 << 20);
//   EmVector<Record> data = materialize<Record>(ctx, host_records);
//
//   // K-1 splitters with buckets in [a, b]:
//   auto s = approx_splitters<Record>(ctx, data, {.k = 16, .a = 100, .b = 900});
//
//   // Physical partitioning with sizes in [a, b]:
//   auto p = approx_partitioning<Record>(ctx, data, {.k = 16, .a = 100, .b = 900});
//
//   // The machinery is public too: multi_select / multi_partition /
//   // select_rank / external_sort / intermixed_select.
//
// See README.md for the model, the guarantees, and the experiment harness.
#pragma once

#include "apps/histogram.hpp"      // nearly equi-depth histograms
#include "apps/load_balance.hpp"   // K-machine load balancing
#include "apps/range_count.hpp"    // batched ranks / range counts
#include "apps/top_k.hpp"          // K largest / smallest
#include "baselines/quantile_sketch.hpp"  // one-pass merge-collapse summary
#include "baselines/sort_baseline.hpp"  // sort_* baselines, naive_multi_select
#include "core/partitioning.hpp"   // approx_partitioning (Theorem 6)
#include "core/spec.hpp"           // ApproxSpec, validate_spec
#include "core/splitters.hpp"      // approx_splitters (Theorem 5)
#include "core/verify.hpp"         // verify_splitters / verify_partitioning
#include "em/block_device.hpp"     // MemoryBlockDevice, FileBlockDevice
#include "em/context.hpp"          // Context (M, B, budget, stats)
#include "em/sharded_device.hpp"   // ShardedBlockDevice (D-disk striping)
#include "em/em_vector.hpp"        // EmVector<T>
#include "em/stream.hpp"           // StreamReader/Writer, materialize, to_host
#include "partition/multi_partition.hpp"  // multi_partition, precise_partition
#include "partition/reduction.hpp"        // §3 reduction demo
#include "em/file_io.hpp"                 // streaming file import/export
#include "em/paged_array.hpp"             // LRU buffer pool (counterfactual)
#include "em/phase_profile.hpp"           // per-phase I/O attribution
#include "select/intermixed.hpp"          // intermixed_select (§4.1)
#include "select/multi_select.hpp"        // multi_select (Theorem 4), select_rank
#include "select/sampled_splitters.hpp"   // randomized splitter engine
#include "sort/distribution_sort.hpp"     // the other optimal sort
#include "sort/external_sort.hpp"         // external_sort (the baseline)
#include "sort/merge_sorted.hpp"          // public k-way merge
#include "util/distinct_adapter.hpp"      // multiset -> total order tagging
#include "util/record.hpp"                // Record
#include "util/workload.hpp"              // input generators

// spec.hpp — problem specification shared by the approximate K-splitters and
// K-partitioning algorithms.
//
// Both problems take (K, [a, b]) over a set of N elements; solutions exist
// iff a*K <= N <= b*K (§1.1 of the paper).  The grounded special cases get
// cheaper algorithms:
//   right-grounded:  b >= N  (no upper constraint)
//   left-grounded:   a == 0  (no lower constraint)
//   two-sided:       0 < a and b < N
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace emsplit {

/// Parameters of an approximate K-splitters / K-partitioning instance.
struct ApproxSpec {
  std::uint64_t k = 1;  ///< number of partitions (K-1 splitters)
  std::uint64_t a = 0;  ///< minimum partition size
  std::uint64_t b = 0;  ///< maximum partition size

  [[nodiscard]] bool right_grounded(std::uint64_t n) const noexcept {
    return b >= n;
  }
  [[nodiscard]] bool left_grounded() const noexcept { return a == 0; }
};

/// Throws std::invalid_argument unless a solution exists for `n` elements:
/// K >= 1, a <= b, and a*K <= n <= b*K.
inline void validate_spec(std::uint64_t n, const ApproxSpec& spec) {
  if (spec.k == 0) {
    throw std::invalid_argument("ApproxSpec: K must be at least 1");
  }
  if (spec.a > spec.b) {
    throw std::invalid_argument("ApproxSpec: requires a <= b");
  }
  // a*K <= n  <=>  a <= floor(n/K)  (overflow-safe form).
  if (spec.a > n / spec.k) {
    throw std::invalid_argument(
        "ApproxSpec: no solution, a*K > N (a=" + std::to_string(spec.a) +
        " K=" + std::to_string(spec.k) + " N=" + std::to_string(n) + ")");
  }
  // n <= b*K, again overflow-safe.
  const bool b_times_k_at_least_n =
      spec.b >= n || spec.b >= (n + spec.k - 1) / spec.k;
  if (!b_times_k_at_least_n) {
    throw std::invalid_argument(
        "ApproxSpec: no solution, b*K < N (b=" + std::to_string(spec.b) +
        " K=" + std::to_string(spec.k) + " N=" + std::to_string(n) + ")");
  }
}

}  // namespace emsplit

// splitters.hpp — approximate K-splitters (paper §5.1, Theorem 5).
//
// Find K-1 elements s_1 < ... < s_{K-1} of S such that every induced bucket
// S ∩ (s_{i-1}, s_i] has size in [a, b].  Optimal costs by variant:
//
//   right-grounded (b >= N):  O((1 + aK/B) lg_{M/B}(K/B))   — sublinear when
//                             aK << N: only an aK-element prefix is read!
//   left-grounded  (a == 0):  O((N/B) lg_{M/B}(N/(bB)))
//   two-sided:                O((aK/B) lg_{M/B}(K/B) + (N/B) lg_{M/B}(N/(bB)))
//
// All three reduce to multi-selection (Theorem 4) on carefully chosen rank
// sets; the two-sided case first splits S physically into its aK' smallest
// elements and the rest so that the quantile work on the small side is
// charged only |S_low|/B per scan.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "core/spec.hpp"
#include "em/context.hpp"
#include "em/em_vector.hpp"
#include "em/stream.hpp"
#include "select/multi_select.hpp"

namespace emsplit {
namespace detail {

/// Pick `want` arbitrary elements of `input` distinct from the (sorted)
/// `exclude` list, reading only a prefix: O(1 + (want + |exclude|)/B) I/Os.
/// Records form a strict total order, so any `want + |exclude|` prefix
/// elements contain enough candidates.
template <EmRecord T, typename Less>
std::vector<T> arbitrary_distinct(const EmVector<T>& input,
                                  const std::vector<T>& exclude,
                                  std::size_t want, Less less) {
  std::vector<T> picked;
  picked.reserve(want);
  StreamReader<T> reader(input);
  while (picked.size() < want) {
    if (reader.done()) {
      throw std::logic_error(
          "arbitrary_distinct: input exhausted (duplicate records? the "
          "library requires a strict total order)");
    }
    const T e = reader.next();
    const bool excluded = std::binary_search(exclude.begin(), exclude.end(), e,
                                             less);
    if (!excluded) picked.push_back(e);
  }
  return picked;
}

/// Quantile ranks: floor(i * n / k) for i = 1..k-1.  Bucket sizes are then
/// floor(n/k) or ceil(n/k), both within [a, b] whenever a <= n/k <= b.
inline std::vector<std::uint64_t> quantile_ranks(std::uint64_t n,
                                                 std::uint64_t k) {
  std::vector<std::uint64_t> ranks;
  ranks.reserve(static_cast<std::size_t>(k - 1));
  for (std::uint64_t i = 1; i < k; ++i) ranks.push_back(i * n / k);
  return ranks;
}

}  // namespace detail

/// Solve the approximate K-splitters problem on `input` with parameters
/// `spec`.  Returns the K-1 splitters in ascending order.  See the header
/// comment for per-variant costs; all are optimal (Theorems 1, 2, 5).
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] std::vector<T> approx_splitters(Context& ctx,
                                              const EmVector<T>& input,
                                              const ApproxSpec& spec,
                                              Less less = {}) {
  const std::uint64_t n = input.size();
  const std::uint64_t k = spec.k;
  validate_spec(n, spec);
  if (k > n) {
    throw std::invalid_argument("approx_splitters: K must be at most N");
  }
  if (k == 1) return {};

  // ---- Right-grounded: read only an aK prefix. ---------------------------
  if (spec.right_grounded(n)) {
    if (spec.a == 0) {
      // Any K-1 distinct elements do: every bucket size is in [0, N].
      auto s = detail::arbitrary_distinct<T, Less>(
          input, {}, static_cast<std::size_t>(k - 1), less);
      std::sort(s.begin(), s.end(), less);
      return s;
    }
    // S' = the first aK elements (arbitrary subset); splitters = its
    // (1/K)-quantile, i.e. the elements of rank i*a in S' (i = 1..K-1).
    // Every bucket then holds >= a elements of S' and hence of S.
    const std::uint64_t prefix = spec.a * k;
    std::vector<std::uint64_t> ranks;
    ranks.reserve(static_cast<std::size_t>(k - 1));
    for (std::uint64_t i = 1; i < k; ++i) ranks.push_back(i * spec.a);
    auto s = multi_select<T, Less>(ctx, input, 0,
                                   static_cast<std::size_t>(prefix), ranks,
                                   less);
    return s;  // multi_select returns in rank order = ascending
  }

  // ---- Left-grounded: split every b ranks, pad arbitrarily. --------------
  if (spec.left_grounded()) {
    const std::uint64_t kprime = (n + spec.b - 1) / spec.b;  // ceil(N/b)
    std::vector<std::uint64_t> ranks;
    for (std::uint64_t i = 1; i < kprime; ++i) ranks.push_back(i * spec.b);
    std::vector<T> s = multi_select<T, Less>(ctx, input, ranks, less);
    if (kprime < k) {
      std::vector<T> sorted_s(s);
      std::sort(sorted_s.begin(), sorted_s.end(), less);
      auto extra = detail::arbitrary_distinct<T, Less>(
          input, sorted_s, static_cast<std::size_t>(k - kprime), less);
      s.insert(s.end(), extra.begin(), extra.end());
      std::sort(s.begin(), s.end(), less);
    }
    return s;
  }

  // ---- Two-sided. ---------------------------------------------------------
  // Cheap regime first (paper §5.1): when a >= N/2K or b <= 2N/K, the exact
  // (1/K)-quantile already meets [a, b] and costs only O((N/B) lg (K/B)).
  if (spec.a * 2 * k >= n || spec.b * k <= 2 * n) {
    return multi_select<T, Less>(ctx, input, detail::quantile_ranks(n, k),
                                 less);
  }

  // General regime: a < N/2K and b > 2N/K.  K' = floor((bK - N)/(b - a));
  // the aK' smallest elements ("S_low") get K' buckets of exactly a; the
  // rest ("S_high") gets K - K' roughly even buckets whose sizes land in
  // [a, b] by the choice of K'.  The paper realizes this with a physical
  // split of S so the low-side quantile passes are charged only |S_low|/B
  // each; our multi-selection achieves the same charging implicitly — its
  // multi-partition stage localizes the clustered low-side ranks into small
  // pieces after one level, and every further level touches only pieces
  // that still contain unresolved ranks.  So a single call with the global
  // rank set meets the two-sided bound (E3 validates the shape).
  const std::uint64_t kprime = (spec.b * k - n) / (spec.b - spec.a);
  if (kprime < 1 || kprime >= k) {
    throw std::logic_error("approx_splitters: internal K' out of range");
  }
  const std::uint64_t low_size = spec.a * kprime;
  std::vector<std::uint64_t> ranks;
  ranks.reserve(static_cast<std::size_t>(k - 1));
  for (std::uint64_t i = 1; i <= kprime; ++i) ranks.push_back(i * spec.a);
  const std::uint64_t high = n - low_size;
  for (std::uint64_t i = 1; i < k - kprime; ++i) {
    ranks.push_back(low_size + i * high / (k - kprime));
  }
  return multi_select<T, Less>(ctx, input, ranks, less);
}

}  // namespace emsplit

// partitioning.hpp — approximate K-partitioning (paper §5.2, Theorem 6).
//
// Physically divide S into K ordered partitions with sizes in [a, b].
// Costs by variant (all optimal per Theorem 3 except the aK ~ N corner of
// the right-grounded case — see Table 1):
//
//   right-grounded (b >= N):  O(N/B + (aK/B) lg_{M/B} min{K, aK/B})
//   left-grounded  (a == 0):  O((N/B) lg_{M/B} min{N/b, N/B})
//   two-sided:                sum of the two shapes above
//
// The skeletons mirror the splitters algorithms with multi-partition in
// place of multi-selection.  Output: one contiguous vector plus K+1 bounds
// ("linked list" order of the paper = concatenation order here).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "core/spec.hpp"
#include "em/context.hpp"
#include "em/em_vector.hpp"
#include "em/stream.hpp"
#include "partition/multi_partition.hpp"

namespace emsplit {

/// Result of approximate K-partitioning: partition i (0-based) occupies
/// records [bounds[i], bounds[i+1]) of `data`, and every element of
/// partition i precedes every element of partition j > i in the total order.
template <EmRecord T>
struct ApproxPartitioning {
  EmVector<T> data;
  std::vector<std::uint64_t> bounds;  // size K+1

  [[nodiscard]] std::uint64_t partition_size(std::size_t i) const {
    return bounds[i + 1] - bounds[i];
  }
  [[nodiscard]] std::size_t partitions() const { return bounds.size() - 1; }
};

namespace detail {

/// Ranks i*floor-quantiles of n into k parts (sizes floor/ceil of n/k).
inline std::vector<std::uint64_t> quantile_split_ranks(std::uint64_t n,
                                                       std::uint64_t k) {
  std::vector<std::uint64_t> ranks;
  ranks.reserve(static_cast<std::size_t>(k - 1));
  for (std::uint64_t i = 1; i < k; ++i) ranks.push_back(i * n / k);
  return ranks;
}

}  // namespace detail

/// Solve the approximate K-partitioning problem on `input` with parameters
/// `spec`.  See the header comment for per-variant costs.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] ApproxPartitioning<T> approx_partitioning(Context& ctx,
                                                        const EmVector<T>& input,
                                                        const ApproxSpec& spec,
                                                        Less less = {}) {
  const std::uint64_t n = input.size();
  const std::uint64_t k = spec.k;
  validate_spec(n, spec);
  if (k > n && spec.a > 0) {
    throw std::invalid_argument("approx_partitioning: K > N requires a == 0");
  }

  if (k == 1) {
    // One partition: a <= N <= b was validated; just copy.
    auto part = multi_partition<T, Less>(ctx, input, {}, less);
    return ApproxPartitioning<T>{std::move(part.data), std::move(part.bounds)};
  }

  // ---- Right-grounded: cut off K-1 prefixes of exactly a. ----------------
  // Split ranks ia (i = 1..K-1); everything above a(K-1) is the K-th
  // partition (size N - a(K-1) >= a).  The multi-partition recursion
  // resolves the clustered low ranks on ever-smaller pieces, so the total
  // cost is N/B (one distribution level over everything) plus the
  // (aK/B) lg min{K, aK/B} recursion charged only to the prefix — the
  // paper's Theorem 6 shape without its explicit physical pre-split.
  if (spec.right_grounded(n) && !spec.left_grounded()) {
    std::vector<std::uint64_t> ranks;
    for (std::uint64_t i = 1; i < k; ++i) ranks.push_back(i * spec.a);
    auto part = multi_partition<T, Less>(ctx, input, ranks, less);
    return ApproxPartitioning<T>{std::move(part.data), std::move(part.bounds)};
  }

  // ---- Left-grounded (also covers a == 0 with b >= N): -------------------
  if (spec.left_grounded()) {
    const std::uint64_t kprime =
        std::min<std::uint64_t>(k, (n + spec.b - 1) / spec.b);  // ceil(N/b)
    std::vector<std::uint64_t> ranks;
    for (std::uint64_t i = 1; i < kprime; ++i) ranks.push_back(i * spec.b);
    auto part = multi_partition<T, Less>(ctx, input, ranks, less);
    ApproxPartitioning<T> out;
    out.data = std::move(part.data);
    out.bounds = std::move(part.bounds);
    // Pad with K - K' empty partitions (sizes 0 >= a = 0).
    while (out.bounds.size() < k + 1) out.bounds.push_back(n);
    return out;
  }

  // ---- Two-sided. ---------------------------------------------------------
  if (spec.a * 2 * k >= n || spec.b * k <= 2 * n) {
    // Quantile partition: sizes floor/ceil(N/K), both within [a, b].
    auto part = multi_partition<T, Less>(
        ctx, input, detail::quantile_split_ranks(n, k), less);
    return ApproxPartitioning<T>{std::move(part.data), std::move(part.bounds)};
  }

  // General regime: a < N/2K and b > 2N/K.  K' buckets of exactly a over
  // the aK' smallest elements, then K - K' roughly even buckets over the
  // rest (sizes within [a, b] by the choice of K').  As in approx_splitters,
  // one multi-partition call at the global rank set inherits the paper's
  // two-sided bound through the recursion's locality.
  const std::uint64_t kprime = (spec.b * k - n) / (spec.b - spec.a);
  if (kprime < 1 || kprime >= k) {
    throw std::logic_error("approx_partitioning: internal K' out of range");
  }
  const std::uint64_t low_size = spec.a * kprime;
  const std::uint64_t high = n - low_size;
  std::vector<std::uint64_t> ranks;
  ranks.reserve(static_cast<std::size_t>(k - 1));
  for (std::uint64_t i = 1; i <= kprime; ++i) ranks.push_back(i * spec.a);
  for (std::uint64_t i = 1; i < k - kprime; ++i) {
    ranks.push_back(low_size + i * high / (k - kprime));
  }
  auto part = multi_partition<T, Less>(ctx, input, ranks, less);
  return ApproxPartitioning<T>{std::move(part.data), std::move(part.bounds)};
}

}  // namespace emsplit

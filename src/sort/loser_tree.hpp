// loser_tree.hpp — tournament tree of losers for k-way merging.
//
// The classic selection-tree structure (Knuth TAOCP vol. 3 §5.4.1): k sorted
// sources, O(log k) comparisons per extracted record, O(k) memory words of
// tree state.  This is the engine of both the multiway merge pass in external
// sorting and of any k-way consumption of pre-split runs.
//
// Sources are abstracted as cursors: anything with `bool done()`, `const T&
// peek()`, `void advance()`.  StreamReader<T> matches after a thin adapter
// (see kway_merge in external_sort.hpp).
#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <vector>

namespace emsplit {

/// Cursor concept for merge sources.
template <typename C, typename T>
concept MergeCursor = requires(C c, const C cc) {
  { cc.done() } -> std::convertible_to<bool>;
  { c.peek() } -> std::convertible_to<const T&>;
  c.advance();
};

/// Tournament tree of losers over `k` cursors.
///
/// Ties between sources are broken by source index, which makes the merge
/// stable with respect to source order — handy for deterministic tests.
template <typename T, typename Cursor, typename Less = std::less<T>>
  requires MergeCursor<Cursor, T>
class LoserTree {
 public:
  explicit LoserTree(std::vector<Cursor> cursors, Less less = {})
      : cursors_(std::move(cursors)), less_(less) {
    k_ = cursors_.size();
    assert(k_ >= 1);
    tree_.assign(k_, kNone);
    // Build by "playing" each source up from its leaf.
    winner_ = kNone;
    for (std::size_t i = 0; i < k_; ++i) {
      std::size_t contender = i;
      std::size_t node = (i + k_) / 2;
      while (node > 0) {
        if (tree_[node] == kNone) {
          tree_[node] = contender;
          contender = kNone;
          break;
        }
        if (contender != kNone && beats(tree_[node], contender)) {
          std::swap(contender, tree_[node]);
        }
        node /= 2;
      }
      if (contender != kNone) winner_ = contender;
    }
  }

  /// True when all sources are exhausted.
  [[nodiscard]] bool done() const {
    return winner_ == kNone || cursors_[winner_].done();
  }

  /// Smallest current record across all sources.
  [[nodiscard]] const T& peek() {
    assert(!done());
    return cursors_[winner_].peek();
  }

  /// Which source currently holds the smallest record.
  [[nodiscard]] std::size_t winner_index() const {
    assert(!done());
    return winner_;
  }

  /// Consume the smallest record and replay the tournament along one
  /// leaf-to-root path (O(log k) comparisons).
  T next() {
    assert(!done());
    T v = cursors_[winner_].peek();
    cursors_[winner_].advance();
    replay(winner_);
    return v;
  }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  /// True if source `a` wins against source `b` (smaller record, index tie).
  /// Non-const because peeking a stream cursor may fault in its buffer.
  [[nodiscard]] bool beats(std::size_t a, std::size_t b) {
    if (a == kNone) return false;
    if (b == kNone) return true;
    const bool a_done = cursors_[a].done();
    const bool b_done = cursors_[b].done();
    if (a_done != b_done) return b_done;
    if (a_done) return a < b;
    if (less_(cursors_[a].peek(), cursors_[b].peek())) return true;
    if (less_(cursors_[b].peek(), cursors_[a].peek())) return false;
    return a < b;
  }

  void replay(std::size_t source) {
    std::size_t contender = source;
    for (std::size_t node = (source + k_) / 2; node > 0; node /= 2) {
      if (beats(tree_[node], contender)) std::swap(contender, tree_[node]);
    }
    winner_ = contender;
    if (winner_ != kNone && cursors_[winner_].done()) {
      // The overall winner may be an exhausted source only when every source
      // is exhausted (beats() ranks exhausted sources last).
      winner_ = kNone;
    }
  }

  std::vector<Cursor> cursors_;
  Less less_;
  std::size_t k_ = 0;
  std::vector<std::size_t> tree_;  // tree_[i] = loser at internal node i
  std::size_t winner_ = kNone;
};

}  // namespace emsplit

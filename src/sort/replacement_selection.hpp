// replacement_selection.hpp — snow-plow run formation.
//
// Knuth's replacement selection (TAOCP vol. 3 §5.4.1R): stream the input
// through an M-record min-heap, emitting the smallest element that can
// still extend the current run; elements smaller than the last one written
// are parked for the next run.  On random input the runs come out about
// 2M long — half the number of chunk-sorted runs — which can remove a
// whole merge pass.  On already-sorted input one giant run emerges and the
// sort degenerates to a copy; on reverse-sorted input runs are exactly M
// and the trick buys nothing.  Experiment E17 measures all three.
//
// The heap orders by (run id, record): current-run elements first, parked
// elements after, so one heap serves both runs with no second buffer.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "em/context.hpp"
#include "em/em_vector.hpp"
#include "em/stream.hpp"

namespace emsplit {
namespace detail {

/// Split `input` into sorted runs via replacement selection; returns the
/// run vector and its boundaries (the same contract as form_runs).
template <EmRecord T, typename Less>
std::pair<EmVector<T>, std::vector<std::size_t>> form_runs_replacement(
    Context& ctx, const EmVector<T>& input, Less less) {
  const std::size_t b = ctx.block_records<T>();
  using Entry = std::pair<std::uint64_t, T>;  // (run id, record)
  // Heap capacity: memory minus reader/writer buffers, in heap entries.
  // The run-id tag is the snow plow's memory overhead — it shrinks the heap
  // below M records, which is why the expected run length on random input
  // is 2 * M * sizeof(T)/sizeof(Entry) rather than the textbook 2M.
  // (The reader and writer each buffer stream_blocks() blocks under the
  // current I/O tuning.)
  const std::size_t heap_cap = std::max<std::size_t>(
      2, (ctx.mem_bytes() - 2 * ctx.stream_blocks() * b * sizeof(T)) /
             sizeof(Entry));

  auto heap_res = ctx.budget().reserve(heap_cap * sizeof(Entry));
  const auto entry_greater = [less](const Entry& x, const Entry& y) {
    if (x.first != y.first) return x.first > y.first;
    if (less(y.second, x.second)) return true;
    if (less(x.second, y.second)) return false;
    return false;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(entry_greater)>
      heap(entry_greater);

  EmVector<T> runs(ctx, input.size());
  std::vector<std::size_t> offsets{0};
  StreamReader<T> reader(input);
  StreamWriter<T> writer(runs);

  // Prime the heap.
  while (heap.size() < heap_cap && !reader.done()) {
    heap.emplace(0, reader.next());
  }

  std::uint64_t current_run = 0;
  bool have_last = false;
  T last{};
  while (!heap.empty()) {
    const auto [run, v] = heap.top();
    heap.pop();
    if (run != current_run) {
      offsets.push_back(writer.count());
      current_run = run;
      have_last = false;
    }
    writer.push(v);
    last = v;
    have_last = true;
    if (!reader.done()) {
      const T next = reader.next();
      // An element smaller than the last output cannot join this run.
      const bool fits = !have_last || !less(next, last);
      heap.emplace(fits ? current_run : current_run + 1, next);
    }
  }
  writer.finish();
  offsets.push_back(writer.count());
  if (input.empty() && offsets.size() == 1) offsets.push_back(0);
  return {std::move(runs), std::move(offsets)};
}

}  // namespace detail
}  // namespace emsplit

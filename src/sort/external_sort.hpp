// external_sort.hpp — classic external merge sort.
//
// Aggarwal & Vitter's optimal sorting algorithm and this repository's
// universal baseline: every problem in the paper can be solved by sorting in
// Θ((N/B) log_{M/B}(N/B)) I/Os, and every experiment compares against it.
//
//  * Run formation: load chunks of `run_records` (default: all of M that the
//    budget can hold beyond the stream buffers), sort in memory, write runs.
//  * Merge passes: loser-tree merges of fan-in f = M/B - 1 (one reader buffer
//    per run plus one writer buffer) until a single run remains, ping-ponging
//    between two scratch vectors.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "em/checkpoint.hpp"
#include "em/context.hpp"
#include "em/pass_engine.hpp"
#include "em/em_vector.hpp"
#include "em/stream.hpp"
#include "sort/chunk_sort.hpp"
#include "sort/loser_tree.hpp"
#include "sort/replacement_selection.hpp"

namespace emsplit {

/// Adapter giving StreamReader the MergeCursor interface over a record range.
template <EmRecord T>
class ReaderCursor {
 public:
  ReaderCursor(const EmVector<T>& vec, std::size_t first, std::size_t last)
      : reader_(vec, first, last) {}

  [[nodiscard]] bool done() const { return reader_.done(); }
  [[nodiscard]] const T& peek() { return reader_.peek(); }
  void advance() { (void)reader_.next(); }

 private:
  StreamReader<T> reader_;
};

namespace detail {

/// Run boundaries: runs[i] = [offsets[i], offsets[i+1]) within a vector.
using RunOffsets = std::vector<std::size_t>;

/// Phase 1 — split `input` into sorted runs written to a fresh vector.
///
/// Runs are produced through a StreamReader/StreamWriter pair so that the
/// async tuning's read-ahead and write-behind overlap with the in-memory
/// sorting: while chunk i sorts (shard-parallel on the CPU pool, see
/// chunk_sort.hpp), up to queue_depth prefetched groups of chunk i + 1 are
/// already in flight, and the merged output of chunk i drains behind the
/// computation.  The chunk size is M minus the two stream footprints —
/// at the default tuning that is the classic M - 2B, so the default path
/// reproduces the seed's run geometry and I/O counts exactly.
template <EmRecord T, typename Less>
std::pair<EmVector<T>, RunOffsets> form_runs(Context& ctx,
                                             const EmVector<T>& input,
                                             Less less) {
  const std::size_t b = ctx.block_records<T>();
  const std::size_t mem = ctx.mem_records<T>();
  const std::size_t sb = ctx.stream_blocks() * b;  // one stream's records
  EmVector<T> runs(ctx, input.size());
  RunOffsets offsets{0};
  if (mem < 2 * sb + b) {
    // Degenerate tuning: the stream pair leaves no room for even a block of
    // chunk.  Fall back to the bulk load/sort/store path (chunk M - 2B, one
    // transfer buffer at a time), which needs no stream footprints.
    const std::size_t chunk = std::max<std::size_t>(b, mem - 2 * b);
    auto chunk_res = ctx.budget().reserve(chunk * sizeof(T));
    std::vector<T> buf(chunk);
    for (std::size_t first = 0; first < input.size(); first += chunk) {
      const std::size_t len = std::min(chunk, input.size() - first);
      const auto span = std::span<T>(buf).subspan(0, len);
      load_range<T>(input, first, span);
      std::sort(span.begin(), span.end(), less);
      store_range<T>(runs, first, span);
      offsets.push_back(first + len);
    }
  } else {
    const std::size_t chunk = mem - 2 * sb;
    auto chunk_res = ctx.budget().reserve(chunk * sizeof(T));
    std::vector<T> buf(chunk);
    StreamReader<T> reader(input);
    StreamWriter<T> writer(runs);
    while (!reader.done()) {
      const std::size_t len = std::min(chunk, reader.remaining());
      std::size_t got = 0;
      while (got < len) {
        const std::span<const T> sp = reader.peek_span();
        const std::size_t take = std::min(sp.size(), len - got);
        std::copy_n(sp.data(), take, buf.data() + got);
        reader.consume(take);
        got += take;
      }
      const auto span = std::span<T>(buf).first(len);
      const auto shards = sort_shards_in_place<T>(ctx, span, less);
      merge_shards<T>(span, shards, less,
                      [&writer](const T& v) { writer.push(v); });
      offsets.push_back(offsets.back() + len);
    }
    writer.finish();
  }
  runs.set_size(input.size());
  if (input.empty()) offsets.push_back(0);
  return {std::move(runs), std::move(offsets)};
}

/// One merge pass: groups of up to `fan_in` consecutive runs each become one
/// output run.
template <EmRecord T, typename Less>
std::pair<EmVector<T>, RunOffsets> merge_pass(Context& ctx,
                                              const EmVector<T>& runs,
                                              const RunOffsets& offsets,
                                              std::size_t fan_in, Less less) {
  EmVector<T> out(ctx, runs.size());
  RunOffsets out_offsets{0};
  StreamWriter<T> writer(out);
  const std::size_t num_runs = offsets.size() - 1;
  for (std::size_t group = 0; group < num_runs; group += fan_in) {
    const std::size_t last_run = std::min(group + fan_in, num_runs);
    std::vector<ReaderCursor<T>> cursors;
    cursors.reserve(last_run - group);
    for (std::size_t r = group; r < last_run; ++r) {
      cursors.emplace_back(runs, offsets[r], offsets[r + 1]);
    }
    LoserTree<T, ReaderCursor<T>, Less> tree(std::move(cursors), less);
    while (!tree.done()) writer.push(tree.next());
    out_offsets.push_back(writer.count());
  }
  writer.finish();
  return {std::move(out), std::move(out_offsets)};
}

}  // namespace detail

/// How the initial sorted runs are produced.
enum class RunStrategy {
  kChunkSort,             ///< sort M-record chunks in memory (runs of M)
  kReplacementSelection,  ///< snow-plow heap (runs ~2M on random input)
};

namespace detail {

/// Job fingerprint for the sort checkpoint: digests everything that shapes
/// the pass structure, so journaled state is only resumed by the identical
/// job (same data size, record type, geometry and run strategy).
template <EmRecord T>
std::uint64_t sort_fingerprint(const Context& ctx, std::size_t n,
                               RunStrategy strategy) {
  std::uint64_t h = fingerprint_mix(kFingerprintSeed, 0x50525453);  // "SRTS"
  h = fingerprint_mix(h, n);
  h = fingerprint_mix(h, sizeof(T));
  h = fingerprint_mix(h, ctx.block_records<T>());
  h = fingerprint_mix(h, ctx.stream_blocks());
  h = fingerprint_mix(h, ctx.mem_records<T>());
  h = fingerprint_mix(h, static_cast<std::uint64_t>(strategy));
  return h;
}

}  // namespace detail

/// Sort `input` into a new vector in Θ((N/B) log_{M/B}(N/B)) I/Os.
/// The input vector is left untouched.
///
/// The pass lifecycle lives in the pass engine (em/pass_engine.hpp): the
/// PassChain owns the journal resume / ExtentGuard publish / final take of
/// every pass, and the PassRunner wraps each pass body in the uniform
/// trace + profile envelope.  With a CheckpointJournal attached to the
/// context, every completed pass (run formation, then each merge pass) is
/// published, and a rerun of the identical job resumes from the last
/// published pass with bit-identical output — a crash repays only the
/// interrupted pass's I/Os.  Without a journal the chain degrades to plain
/// moves: exactly the seed code path.  Pass contents are deterministic given
/// (runs, offsets), which is what makes a resumed run bit-identical.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] EmVector<T> external_sort(
    Context& ctx, const EmVector<T>& input, Less less = {},
    RunStrategy strategy = RunStrategy::kChunkSort) {
  const std::size_t b = ctx.block_records<T>();
  // Every stream buffers stream_blocks() blocks (batching x queue depth), so
  // the fan-in shrinks accordingly: f readers plus one writer must fit in M.
  // stream_blocks() is tuning-defined and async-agnostic, which keeps sync
  // and async runs of the same tuning I/O-count identical.
  const std::size_t s = ctx.stream_blocks();
  const std::size_t fan_in =
      std::max<std::size_t>(2, ctx.mem_records<T>() / (b * s) - 1);

  PassRunner runner(
      ctx, {"sort", detail::sort_fingerprint<T>(ctx, input.size(), strategy)});
  PassChain<T> chain(runner, "sort/resume");
  if (!chain.resumed()) {
    auto [formed, offsets] = runner.run("sort/run-formation", [&] {
      return strategy == RunStrategy::kReplacementSelection
                 ? detail::form_runs_replacement<T>(ctx, input, less)
                 : detail::form_runs<T>(ctx, input, less);
    });
    chain.install(std::move(formed), std::move(offsets));
  }
  while (chain.offsets().size() - 1 > 1) {
    auto [next, next_offsets] = runner.run("sort/merge-pass", [&] {
      return detail::merge_pass<T>(ctx, chain.data(), chain.offsets(), fan_in,
                                   less);
    });
    chain.install(std::move(next), std::move(next_offsets));
  }
  return chain.take();
}

/// True iff `vec` is sorted under `less` (one scan).
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] bool is_sorted_em(const EmVector<T>& vec, Less less = {}) {
  if (vec.size() < 2) return true;
  StreamReader<T> r(vec);
  T prev = r.next();
  while (!r.done()) {
    T cur = r.next();
    if (less(cur, prev)) return false;
    prev = cur;
  }
  return true;
}

/// Theoretical I/O-count formulas used throughout the bench harness.
/// `sort_ios` is the textbook 2*(N/B)*(1 + ceil(log_f(runs))) shape.
namespace formulas {

/// ceil(log_base(x)) for x >= 1, clamped to >= 1 (the paper's lg convention).
inline double lg_clamped(double base, double x) {
  if (x <= 1.0 || base <= 1.0) return 1.0;
  const double v = std::log(x) / std::log(base);
  return std::max(1.0, v);
}

/// Θ((n/b) lg_{m/b}(n/b)) — external sorting / the trivial baseline.
inline double sort_ios(double n, double m, double b) {
  if (n <= 0) return 0;
  return (n / b) * lg_clamped(m / b, n / b);
}

}  // namespace formulas

}  // namespace emsplit

// chunk_sort.hpp — deterministic sharded sorting of in-memory chunks.
//
// The CPU-parallel replacement for the single std::sort call at the heart of
// run formation, segment sorting and partition leaves.  A chunk is cut into
// `Context::sort_shards()` equal shards (a *geometry* decision — the cuts
// depend only on the chunk length and the knob, never on thread count), the
// shards are sorted concurrently on the context's CPU pool, and a loser-tree
// merge emits the fully sorted sequence.
//
// Determinism: for a fixed shard count the output is a pure function of the
// input — shard sorts are independent std::sort calls and the merge breaks
// ties by shard index.  Under a *total* order (the library's default
// comparators: Record's operator<=>, std::less<int>) the sorted permutation
// is unique, so any shard count reproduces the shards = 1 output bit for
// bit; only weak-order custom comparators can observe the geometry, exactly
// as they already observe the merge fan-in of the external sort.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "em/context.hpp"
#include "em/thread_pool.hpp"
#include "sort/loser_tree.hpp"

namespace emsplit {
namespace detail {

/// MergeCursor over a contiguous sorted shard.
template <typename T>
class SpanCursor {
 public:
  SpanCursor(const T* first, const T* last) : cur_(first), last_(last) {}

  [[nodiscard]] bool done() const { return cur_ == last_; }
  [[nodiscard]] const T& peek() { return *cur_; }
  void advance() { ++cur_; }

 private:
  const T* cur_;
  const T* last_;
};

/// Shard boundaries for `n` records under `shards` geometry: balanced cuts,
/// never more shards than records (and always at least one).
inline std::vector<std::size_t> shard_offsets(std::size_t n,
                                              std::size_t shards) {
  const std::size_t s =
      std::max<std::size_t>(1, std::min(shards, std::max<std::size_t>(n, 1)));
  std::vector<std::size_t> off(s + 1);
  for (std::size_t i = 0; i <= s; ++i) {
    off[i] = n / s * i + std::min(i, n % s);
  }
  return off;
}

/// Sort each shard of `span` in place, shard sorts distributed over the
/// context's CPU pool.  Returns the shard boundaries for merge_shards().
template <EmRecord T, typename Less>
std::vector<std::size_t> sort_shards_in_place(Context& ctx, std::span<T> span,
                                              Less less) {
  std::vector<std::size_t> off = shard_offsets(span.size(), ctx.sort_shards());
  if (off.size() == 2) {
    std::sort(span.begin(), span.end(), less);
    return off;
  }
  run_parallel(ctx.cpu_pool(), off.size() - 1, [&](std::size_t i) {
    std::sort(span.begin() + static_cast<std::ptrdiff_t>(off[i]),
              span.begin() + static_cast<std::ptrdiff_t>(off[i + 1]), less);
  });
  return off;
}

/// Emit the merged sorted sequence of the shards delimited by `off`,
/// calling push(record) in nondecreasing order.  Single-shard chunks are
/// streamed straight through.  The O(shards) tree state is host bookkeeping
/// (like the merge pass's), not budgeted record memory.
template <EmRecord T, typename Less, typename Push>
void merge_shards(std::span<const T> span, const std::vector<std::size_t>& off,
                  Less less, Push&& push) {
  if (off.size() == 2) {
    for (const T& v : span) push(v);
    return;
  }
  std::vector<SpanCursor<T>> cursors;
  cursors.reserve(off.size() - 1);
  for (std::size_t i = 0; i + 1 < off.size(); ++i) {
    cursors.emplace_back(span.data() + off[i], span.data() + off[i + 1]);
  }
  LoserTree<T, SpanCursor<T>, Less> tree(std::move(cursors), less);
  while (!tree.done()) push(tree.next());
}

}  // namespace detail
}  // namespace emsplit

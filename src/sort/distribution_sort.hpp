// distribution_sort.hpp — Aggarwal–Vitter's *other* optimal sort.
//
// Merge sort builds sorted runs and merges; distribution sort splits by
// pivots and recurses — precisely what multi-partition does when asked for
// memory-sized pieces.  Here: multi-partition at every floor(M/3)-th rank
// (so every piece of the result is one in-memory-sortable segment), then a
// final chunked pass sorts each segment in place.  Cost
// Θ((N/B) lg_{M/B}(N/M)) + 2 scans = Θ((N/B) lg_{M/B}(N/B)) — the same
// bound as merge sort from the opposite direction.  Experiment E17 races
// the two (and replacement-selection merge sort) across workload shapes.
#pragma once

#include <algorithm>
#include <functional>

#include "em/context.hpp"
#include "em/em_vector.hpp"
#include "em/stream.hpp"
#include "partition/multi_partition.hpp"

namespace emsplit {

/// Sort `input` into a new vector by recursive distribution.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] EmVector<T> distribution_sort(Context& ctx,
                                            const EmVector<T>& input,
                                            Less less = {}) {
  const std::size_t n = input.size();
  const std::size_t segment = std::max<std::size_t>(
      1, ctx.mem_records<T>() / 3);

  std::vector<std::uint64_t> ranks;
  for (std::size_t r = segment; r < n; r += segment) ranks.push_back(r);
  auto part = multi_partition<T, Less>(ctx, input, ranks, less);

  // Final pass: sort each segment in memory.  Segments that the recursion
  // already realized through in-memory leaves are sorted again — harmless
  // for correctness; the pass is two scans either way.
  EmVector<T> out = std::move(part.data);
  {
    auto res = ctx.budget().reserve(segment * sizeof(T));
    std::vector<T> buf(segment);
    for (std::size_t i = 0; i + 1 < part.bounds.size(); ++i) {
      const std::size_t lo = part.bounds[i];
      const std::size_t hi = part.bounds[i + 1];
      const auto span = std::span<T>(buf).subspan(0, hi - lo);
      load_range<T>(out, lo, span);
      std::sort(span.begin(), span.end(), less);
      store_range<T>(out, lo, span);
    }
  }
  return out;
}

}  // namespace emsplit

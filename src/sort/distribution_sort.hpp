// distribution_sort.hpp — Aggarwal–Vitter's *other* optimal sort.
//
// Merge sort builds sorted runs and merges; distribution sort splits by
// pivots and recurses — precisely what multi-partition does when asked for
// memory-sized pieces.  Here: multi-partition at every floor(M/3)-th rank
// (so every piece of the result is one in-memory-sortable segment), then a
// final chunked pass sorts each segment in place.  Cost
// Θ((N/B) lg_{M/B}(N/M)) + 2 scans = Θ((N/B) lg_{M/B}(N/B)) — the same
// bound as merge sort from the opposite direction.  Experiment E17 races
// the two (and replacement-selection merge sort) across workload shapes.
//
// The pass lifecycle (trace + profile envelope, checkpoint publish/resume)
// comes from the pass engine (em/pass_engine.hpp).  With a CheckpointJournal
// attached the sort is crash-recoverable: the partition result is published
// as pass 1 (the realized spans ride along, encoded in the offsets field),
// and the in-place final pass is bracketed by a begin-marker so a crash
// mid-rewrite — which can tear one segment group into half-old, half-new
// blocks — restarts from scratch instead of resuming over torn data.  A
// crash anywhere else repays only the interrupted pass (the partition's own
// finer-grained journaling covers crashes inside pass 1).
#pragma once

#include <algorithm>
#include <cassert>
#include <functional>
#include <optional>

#include "dist/distributed.hpp"
#include "em/context.hpp"
#include "em/pass_engine.hpp"
#include "em/em_vector.hpp"
#include "em/stream.hpp"
#include "partition/multi_partition.hpp"
#include "sort/chunk_sort.hpp"

namespace emsplit {
namespace detail {

/// Job fingerprint for the distribution-sort checkpoint (see
/// sort_fingerprint): digests everything that shapes the pass structure.
template <EmRecord T>
std::uint64_t dsort_fingerprint(const Context& ctx, std::size_t n) {
  std::uint64_t h = fingerprint_mix(kFingerprintSeed, 0x44535254);  // "DSRT"
  h = fingerprint_mix(h, n);
  h = fingerprint_mix(h, sizeof(T));
  h = fingerprint_mix(h, ctx.block_records<T>());
  h = fingerprint_mix(h, ctx.stream_blocks());
  h = fingerprint_mix(h, ctx.mem_records<T>());
  return h;
}

/// The realized spans tile [0, n) in increasing position order, so each one
/// is fully described by (hi, sorted) with lo implicit — which packs into
/// the journal's per-pass offsets array without any schema change.
inline std::vector<std::uint64_t> encode_spans(
    const std::vector<MultiPartitionSpan>& spans) {
  std::vector<std::uint64_t> enc;
  enc.reserve(spans.size());
  for (const auto& s : spans) {
    enc.push_back((s.hi << 1) | (s.sorted ? 1 : 0));
  }
  return enc;
}

inline std::vector<MultiPartitionSpan> decode_spans(
    const std::vector<std::uint64_t>& enc) {
  std::vector<MultiPartitionSpan> spans;
  spans.reserve(enc.size());
  std::uint64_t lo = 0;
  for (const auto e : enc) {
    const std::uint64_t hi = e >> 1;
    spans.push_back({lo, hi, (e & 1) != 0});
    lo = hi;
  }
  return spans;
}

/// Final pass: every realized run already sits at its final record range
/// (cut counts are exact), so runs the recursion sorted through in-memory
/// leaves are *done* — re-reading them would be pure waste.  Only the
/// unsorted runs (finished partitions streamed through leaf-copy) still
/// need an internal sort.  Each one is confined between consecutive
/// requested ranks, hence at most `segment` records; adjacent unsorted
/// runs are coalesced up to the segment buffer before loading.  The pass
/// rewrites `out` in place, block for block.
template <EmRecord T, typename Less>
void distribution_final_pass(Context& ctx, EmVector<T>& out,
                             const std::vector<MultiPartitionSpan>& spans,
                             std::size_t segment, Less less) {
  auto res = ctx.budget().reserve(segment * sizeof(T));
  std::vector<T> buf(segment);
  // Scratch for the shard merge so the sorted group can stream out of a
  // contiguous array; when M has no room next to `buf`, the in-place
  // std::sort path runs instead (a geometry decision, thread-independent).
  LaneScratch<T> scratch(ctx, ctx.sort_shards() > 1 ? segment : 0);
  std::size_t group_lo = 0;
  std::size_t group_hi = 0;
  const auto flush = [&] {
    if (group_lo == group_hi) return;
    // The pass's true working set is data-dependent: the largest coalesced
    // segment group actually loaded, not the full `segment` reservation.
    // Report it so the trace row shows the in-place pass's high-water mark.
    ctx.note_pass_hwm(static_cast<std::uint64_t>(group_hi - group_lo) *
                      sizeof(T));
    const auto span = std::span<T>(buf).first(group_hi - group_lo);
    load_range<T>(out, group_lo, span);
    if (scratch.available()) {
      const auto shards = detail::sort_shards_in_place<T>(ctx, span, less);
      std::size_t filled = 0;
      detail::merge_shards<T>(span, shards, less,
                              [&](const T& v) { scratch[filled++] = v; });
      store_range<T>(out, group_lo,
                     std::span<const T>(scratch.vec().data(), filled));
    } else {
      std::sort(span.begin(), span.end(), less);
      store_range<T>(out, group_lo, span);
    }
    group_lo = group_hi;
  };
  for (const MultiPartitionSpan& s : spans) {
    if (s.sorted) {
      flush();
      group_lo = group_hi = static_cast<std::size_t>(s.hi);
      continue;
    }
    assert(s.hi - s.lo <= segment);
    if (static_cast<std::size_t>(s.hi) - group_lo > segment) flush();
    group_hi = static_cast<std::size_t>(s.hi);
  }
  flush();
}

}  // namespace detail

/// Sort `input` into a new vector by recursive distribution.
///
/// With a CheckpointJournal attached to the context, the completed partition
/// is published as pass 1 and a rerun of the identical job resumes there
/// with bit-identical output — re-running only the final pass (which is
/// idempotent over completed data: re-sorting a sorted segment is
/// byte-identical under a total order).  Without a journal this is exactly
/// the seed code path.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] EmVector<T> distribution_sort(Context& ctx,
                                            const EmVector<T>& input,
                                            Less less = {}) {
  const std::size_t n = input.size();
  // With workers configured, the whole sort runs as the distributed
  // protocol (dist/distributed.hpp) — same output bytes for every W, the
  // journal keyed by a W-free fingerprint.  Unsupported geometry falls
  // through to the classic single-process path.
  if (dist::dist_supported<T>(ctx, n, 0)) {
    return dist::dist_distribution_sort<T, Less>(ctx, input, less);
  }
  const std::size_t segment = std::max<std::size_t>(
      1, ctx.mem_records<T>() / 3);

  std::vector<std::uint64_t> ranks;
  for (std::size_t r = segment; r < n; r += segment) ranks.push_back(r);

  CheckpointJournal* ckpt = ctx.checkpoint();
  // Only a run that actually partitions is worth journaling: a single
  // in-memory segment is one cheap pass.
  if (ckpt == nullptr || ranks.empty()) {
    PassRunner runner(ctx, {"dsort", 0});
    auto part = runner.run("dsort/partition", [&] {
      return multi_partition<T, Less>(ctx, input, ranks, less);
    });
    EmVector<T> out = std::move(part.data);
    runner.run("dsort/final-sort", [&] {
      detail::distribution_final_pass<T>(ctx, out, part.spans, segment, less);
    });
    return out;
  }

  // Checkpointed path.  The marker fingerprint journals "the in-place final
  // pass has begun" as a zero-extent sort state: a crash mid-rewrite leaves
  // the output extent torn (one group half old, half new blocks), so its
  // multiset no longer matches the partitioned data and resuming over it
  // would be wrong.  Marker present on entry → restart from scratch (the
  // fresh pass-1 publish supersedes and frees the stale extent).
  PassRunner runner(ctx, {"dsort", detail::dsort_fingerprint<T>(ctx, n)});
  const std::uint64_t marker_fp =
      fingerprint_mix(runner.plan().fingerprint, 0x46494E4C);  // "FINL"
  if (ckpt->resume_sort(marker_fp).has_value()) {
    (void)ckpt->take_sort_extent(marker_fp);  // clear the marker (no extent)
    // Discard the torn pass-1 state; the blocks return to the free list.
    ctx.device().deallocate(
        ckpt->take_sort_extent(runner.plan().fingerprint));
  }

  PassChain<T> chain(runner, "dsort/resume");
  std::vector<MultiPartitionSpan> spans;
  if (!chain.resumed()) {
    auto part = runner.run("dsort/partition", [&] {
      return multi_partition<T, Less>(ctx, input, ranks, less);
    });
    spans = std::move(part.spans);
    chain.install(std::move(part.data), detail::encode_spans(spans));
  } else {
    spans = detail::decode_spans(chain.offsets());
  }

  // Publish the begin-marker *before* the first in-place write; pass 0 so
  // resumed-pass accounting never counts it.
  ckpt->publish_sort_pass(marker_fp, 0, BlockRange{}, 0, {});
  runner.run("dsort/final-sort", [&] {
    detail::distribution_final_pass<T>(ctx, chain.data_mut(), spans, segment,
                                       less);
  });
  // Take the marker first: a crash between the two takes resumes at the
  // pass-1 state and re-runs the (idempotent-over-sorted-data) final pass.
  (void)ckpt->take_sort_extent(marker_fp);
  return chain.take();
}

}  // namespace emsplit

// distribution_sort.hpp — Aggarwal–Vitter's *other* optimal sort.
//
// Merge sort builds sorted runs and merges; distribution sort splits by
// pivots and recurses — precisely what multi-partition does when asked for
// memory-sized pieces.  Here: multi-partition at every floor(M/3)-th rank
// (so every piece of the result is one in-memory-sortable segment), then a
// final chunked pass sorts each segment in place.  Cost
// Θ((N/B) lg_{M/B}(N/M)) + 2 scans = Θ((N/B) lg_{M/B}(N/B)) — the same
// bound as merge sort from the opposite direction.  Experiment E17 races
// the two (and replacement-selection merge sort) across workload shapes.
#pragma once

#include <algorithm>
#include <cassert>
#include <functional>
#include <optional>

#include "em/context.hpp"
#include "em/em_vector.hpp"
#include "em/stream.hpp"
#include "partition/multi_partition.hpp"
#include "sort/chunk_sort.hpp"

namespace emsplit {

/// Sort `input` into a new vector by recursive distribution.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] EmVector<T> distribution_sort(Context& ctx,
                                            const EmVector<T>& input,
                                            Less less = {}) {
  const std::size_t n = input.size();
  const std::size_t segment = std::max<std::size_t>(
      1, ctx.mem_records<T>() / 3);

  std::vector<std::uint64_t> ranks;
  for (std::size_t r = segment; r < n; r += segment) ranks.push_back(r);
  auto part = multi_partition<T, Less>(ctx, input, ranks, less);

  // Final pass: every realized run already sits at its final record range
  // (cut counts are exact), so runs the recursion sorted through in-memory
  // leaves are *done* — re-reading them would be pure waste.  Only the
  // unsorted runs (finished partitions streamed through leaf-copy) still
  // need an internal sort.  Each one is confined between consecutive
  // requested ranks, hence at most `segment` records; adjacent unsorted
  // runs are coalesced up to the segment buffer before loading.
  EmVector<T> out = std::move(part.data);
  {
    auto res = ctx.budget().reserve(segment * sizeof(T));
    std::vector<T> buf(segment);
    // Scratch for the shard merge so the sorted group can stream out of a
    // contiguous array; when M has no room next to `buf`, the in-place
    // std::sort path runs instead (a geometry decision, thread-independent).
    std::optional<MemoryReservation> scratch_res;
    std::vector<T> scratch;
    if (ctx.sort_shards() > 1) {
      scratch_res = ctx.budget().try_reserve(segment * sizeof(T));
      if (scratch_res.has_value()) scratch.resize(segment);
    }
    std::size_t group_lo = 0;
    std::size_t group_hi = 0;
    const auto flush = [&] {
      if (group_lo == group_hi) return;
      const auto span = std::span<T>(buf).first(group_hi - group_lo);
      load_range<T>(out, group_lo, span);
      if (!scratch.empty()) {
        const auto shards = detail::sort_shards_in_place<T>(ctx, span, less);
        std::size_t filled = 0;
        detail::merge_shards<T>(span, shards, less,
                                [&](const T& v) { scratch[filled++] = v; });
        store_range<T>(out, group_lo,
                       std::span<const T>(scratch.data(), filled));
      } else {
        std::sort(span.begin(), span.end(), less);
        store_range<T>(out, group_lo, span);
      }
      group_lo = group_hi;
    };
    for (const MultiPartitionSpan& s : part.spans) {
      if (s.sorted) {
        flush();
        group_lo = group_hi = static_cast<std::size_t>(s.hi);
        continue;
      }
      assert(s.hi - s.lo <= segment);
      if (static_cast<std::size_t>(s.hi) - group_lo > segment) flush();
      group_hi = static_cast<std::size_t>(s.hi);
    }
    flush();
  }
  return out;
}

}  // namespace emsplit

// merge_sorted.hpp — public k-way merge of sorted external vectors.
//
// The loser-tree merge that powers external_sort, exposed as an API: merge
// any number of individually sorted vectors into one, in passes of fan-in
// M/B - 1.  Useful on its own whenever sorted runs arrive from elsewhere
// (pre-sorted shards, the outputs of per-partition sorts, log segments).
// Cost: Θ(((Σ n_i)/B) · ceil(log_{M/B} k)).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "em/context.hpp"
#include "em/em_vector.hpp"
#include "em/stream.hpp"
#include "sort/external_sort.hpp"

namespace emsplit {

/// Merge `inputs` (each sorted under `less`) into one sorted vector.
/// The inputs are consumed (their device space is recycled pass by pass).
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] EmVector<T> merge_sorted(Context& ctx,
                                       std::vector<EmVector<T>> inputs,
                                       Less less = {}) {
  if (inputs.empty()) return EmVector<T>(ctx, 0);
  const std::size_t b = ctx.block_records<T>();
  // As in external_sort: each stream owns stream_blocks() blocks of buffer.
  const std::size_t fan_in = std::max<std::size_t>(
      2, ctx.mem_records<T>() / (b * ctx.stream_blocks()) - 1);

  while (inputs.size() > 1) {
    std::vector<EmVector<T>> next;
    for (std::size_t group = 0; group < inputs.size(); group += fan_in) {
      const std::size_t last = std::min(group + fan_in, inputs.size());
      std::size_t total = 0;
      for (std::size_t i = group; i < last; ++i) total += inputs[i].size();
      EmVector<T> out(ctx, total);
      {
        std::vector<ReaderCursor<T>> cursors;
        cursors.reserve(last - group);
        for (std::size_t i = group; i < last; ++i) {
          cursors.emplace_back(inputs[i], 0, inputs[i].size());
        }
        LoserTree<T, ReaderCursor<T>, Less> tree(std::move(cursors), less);
        StreamWriter<T> writer(out);
        while (!tree.done()) writer.push(tree.next());
        writer.finish();
      }
      for (std::size_t i = group; i < last; ++i) inputs[i].reset();
      next.push_back(std::move(out));
    }
    inputs = std::move(next);
  }
  return std::move(inputs.front());
}

}  // namespace emsplit

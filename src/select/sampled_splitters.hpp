// sampled_splitters.hpp — randomized one-pass alternative to
// linear_splitters (the ablation of DESIGN.md §3 / experiment E13).
//
// Draw a uniform reservoir sample of Θ(M) records in a single read-only
// scan and use its order statistics as splitters.  Compared to the
// deterministic recursive sampler:
//
//   cost:    1.0 scans, no writes      (vs ~1.67 scans incl. level writes)
//   quality: bucket sizes O((N/M) log M) with high probability
//            (vs the deterministic proof of O((N/M) log(N/M)))
//
// The classical gap bound: with s uniform samples, the probability that
// some bucket exceeds (c N / s) ln s decays polynomially in s; E13 measures
// the actual max bucket across workloads and seeds.  Randomness comes from
// a caller-provided seed, so runs stay reproducible.
//
// Both splitter engines satisfy the same contract; multi-selection's base
// case can be built on either (the deterministic one is the default, being
// what the paper's model assumes — worst case, no randomness).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <functional>
#include <vector>

#include "em/context.hpp"
#include "em/em_vector.hpp"
#include "em/stream.hpp"
#include "select/linear_splitters.hpp"
#include "util/rng.hpp"

namespace emsplit {

/// Reservoir-sample splitters over records [first, last) of `input`.
/// Returns at most max(1, M/4) sorted splitter elements after one scan.
/// The bucket_bound field is a *high-probability* estimate (4 (n/s) ln s),
/// not a proof — E13 measures how it holds up in practice.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] LinearSplittersResult<T> sampled_splitters(
    Context& ctx, const EmVector<T>& input, std::size_t first,
    std::size_t last, std::uint64_t seed, Less less = {}) {
  const std::size_t n = last - first;
  const std::size_t target =
      std::max<std::size_t>(1, ctx.mem_records<T>() / 4);

  LinearSplittersResult<T> result;
  if (n == 0) return result;

  {
    auto res = ctx.budget().reserve(target * sizeof(T));
    std::vector<T> reservoir;
    reservoir.reserve(std::min(n, target));
    SplitMix64 rng(seed ^ 0xa5a5a5a5a5a5a5a5ULL);
    StreamReader<T> reader(input, first, last);
    std::size_t seen = 0;
    while (!reader.done()) {
      const T e = reader.next();
      ++seen;
      if (reservoir.size() < target) {
        reservoir.push_back(e);
      } else {
        // Vitter's Algorithm R: keep each prefix equally likely.
        const std::uint64_t j = rng.next_below(seen);
        if (j < target) reservoir[static_cast<std::size_t>(j)] = e;
      }
    }
    std::sort(reservoir.begin(), reservoir.end(), less);
    result.splitters = std::move(reservoir);
  }

  const double s = static_cast<double>(result.splitters.size());
  const double dn = static_cast<double>(n);
  result.bucket_bound = n <= result.splitters.size()
                            ? 1
                            : static_cast<std::size_t>(
                                  4.0 * (dn / s) * std::log(s + 2.0)) +
                                  1;
  return result;
}

/// Whole-vector convenience overload.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] LinearSplittersResult<T> sampled_splitters(
    Context& ctx, const EmVector<T>& input, std::uint64_t seed,
    Less less = {}) {
  return sampled_splitters<T, Less>(ctx, input, 0, input.size(), seed, less);
}

}  // namespace emsplit

// linear_splitters.hpp — Θ(M) splitters with small buckets in O(N/B) I/Os.
//
// This is the repository's substitute for the subroutine the paper imports
// from Hu, Sheng, Tao, Yang, Zhou (SODA'13) [6]: given S of size N, produce a
// memory-resident set of splitters such that every induced bucket of S is
// small, using a linear number of I/Os.  The multi-selection base case
// (paper §4.2) only needs the *upper* bound on bucket sizes, which is what we
// guarantee (DESIGN.md §4 discusses the substitution).
//
// Construction — recursive chunked sampling:
//   level 0:   S_0 = S.
//   level l:   read S_{l-1} in chunks of C = M/2 records, sort each chunk in
//              memory, keep the elements at local ranks s, 2s, 3s, ...
//              (s = 4); they form S_l.
//   stop when |S_L| <= M/4; the final sample set, sorted, is the splitters.
//
// Guarantee.  Let r_l(x) = #{e in S_l : e < x}.  Within one sorted chunk the
// kept elements tile the chunk in runs of s, so
//     s * r_l(x)  <=  r_{l-1}(x)  <=  s * r_l(x) + (s-1) * m_l ,
// where m_l is the number of chunks at level l.  Unrolling over consecutive
// final samples u < v (which satisfy r_L(v) - r_L(u) <= 1) bounds the bucket
// between them by
//     s^L + (s-1) * sum_l s^{l-1} * m_l  =  O((N/M) * log(N/M)).
// The code computes this bound exactly (with ceilings) during the run and
// returns it, and tests assert the real maximum bucket never exceeds it.
// Cost: sum_l |S_l| * (1/B read + 1/(sB) write) = O(N/B).
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

#include "em/context.hpp"
#include "em/pass_engine.hpp"
#include "em/em_vector.hpp"
#include "em/stream.hpp"

namespace emsplit {

template <EmRecord T>
struct LinearSplittersResult {
  /// Sorted splitter elements (each is an element of the input).
  std::vector<T> splitters;
  /// Proven upper bound on the size of every induced bucket
  /// S ∩ (splitter_{j-1}, splitter_j]  (with ±infinity at the ends).
  std::size_t bucket_bound = 0;
};

/// Compute splitters for records [first, last) of `input`.
///
/// Postconditions: `splitters.size() <= max(1, M/4)` records; every bucket of
/// the range has at most `bucket_bound` elements, and `bucket_bound =
/// O((n/M) log(n/M) + 1)` where n = last - first.  Costs O(n/B) I/Os.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] LinearSplittersResult<T> linear_splitters(
    Context& ctx, const EmVector<T>& input, std::size_t first,
    std::size_t last, Less less = {}) {
  // Every sampling level is one linear pass over the previous level; the
  // engine wraps each (plus the final load) in the trace/profile envelope.
  PassRunner runner(ctx, {"splitters", 0});
  constexpr std::size_t kStride = 4;  // s in the header comment
  const std::size_t n = last - first;
  const std::size_t mem = ctx.mem_records<T>();
  const std::size_t chunk_cap = std::max<std::size_t>(1, mem / 2);
  const std::size_t target = std::max<std::size_t>(1, mem / 4);

  LinearSplittersResult<T> result;
  if (n == 0) return result;

  // Levels of sampled sets live in scratch vectors; level 0 is the input
  // range itself (never copied).
  EmVector<T> level_vec;           // S_l for l >= 1
  std::size_t level_size = n;      // |S_{l-1}| while producing S_l
  bool level_is_input = true;
  std::size_t stride_pow = 1;      // s^{l-1}
  std::size_t slack = 0;           // (s-1) * sum s^{l-1} m_l so far

  while (level_size > target) {
    const std::size_t num_chunks = (level_size + chunk_cap - 1) / chunk_cap;
    slack += (kStride - 1) * stride_pow * num_chunks;
    stride_pow *= kStride;

    EmVector<T> next = runner.run("splitters/recursive-sample", [&] {
      EmVector<T> sampled(ctx, level_size / kStride + num_chunks);
      auto chunk_res = ctx.budget().reserve(chunk_cap * sizeof(T));
      std::vector<T> buf(chunk_cap);
      StreamWriter<T> writer(sampled);
      for (std::size_t off = 0; off < level_size; off += chunk_cap) {
        const std::size_t len = std::min(chunk_cap, level_size - off);
        const auto span = std::span<T>(buf).subspan(0, len);
        if (level_is_input) {
          load_range<T>(input, first + off, span);
        } else {
          load_range<T>(level_vec, off, span);
        }
        std::sort(span.begin(), span.end(), less);
        for (std::size_t r = kStride - 1; r < len; r += kStride) {
          writer.push(span[r]);
        }
      }
      writer.finish();
      return sampled;
    });
    level_size = next.size();
    level_vec = std::move(next);
    level_is_input = false;
    if (level_size == 0) break;  // degenerate: every chunk smaller than s
  }

  // Load the final level and sort it; these are the splitters.
  result.splitters.resize(level_size);
  if (level_size > 0) {
    runner.run("splitters/final-sample", [&] {
      auto res = ctx.budget().reserve(level_size * sizeof(T));
      if (level_is_input) {
        load_range<T>(input, first, std::span<T>(result.splitters));
      } else {
        load_range<T>(level_vec, 0, std::span<T>(result.splitters));
      }
      std::sort(result.splitters.begin(), result.splitters.end(), less);
    });
  }

  // Consecutive final samples differ by one in r_L; the unrolled recurrence
  // gives the bucket bound below.  The extreme buckets (before the first and
  // after the last splitter) obey the same bound: take r_L = 0 there.
  result.bucket_bound = stride_pow + slack;
  return result;
}

/// Whole-vector convenience overload.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] LinearSplittersResult<T> linear_splitters(Context& ctx,
                                                        const EmVector<T>& input,
                                                        Less less = {}) {
  return linear_splitters<T, Less>(ctx, input, 0, input.size(), less);
}

}  // namespace emsplit

// multi_select.hpp — optimal multi-selection (paper §4.2, Theorem 4).
//
// Report the element at each of K given ranks in O((N/B) log_{M/B}(K/B))
// I/Os — the paper's main algorithmic contribution, closing the gap to the
// Arge–Knudsen–Larsen lower bound and separating multi-selection from
// multi-partition (which costs log_{M/B} K) for small K.
//
//   * K <= m = Θ(M): the base case (base_case.hpp) — linear splitters, one
//     counting scan, one instance of L-intermixed selection.  O(N/B) I/Os.
//   * K > m: multi-partition S at every m-th target rank into g = ceil(K/m)
//     pieces — O((N/B) log_{M/B} g) = O((N/B) log_{M/B}(K/B)) I/Os — then
//     run one base case inside each piece: O(sum |P_i| / B) = O(N/B).
//
// Input ranks may arrive in any order and may repeat; results are returned
// in the order the ranks were given.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "em/context.hpp"
#include "em/pass_engine.hpp"
#include "em/em_vector.hpp"
#include "partition/multi_partition.hpp"
#include "select/base_case.hpp"

namespace emsplit {
namespace detail {

/// Base-case selection allowing any number of (sorted, unique) ranks by
/// batching them into groups of at most `max_groups` per intermixed run.
/// Each batch costs one more O(n/B) pass; callers arrange for O(1) batches.
template <EmRecord T, typename Less>
void multi_select_batched(Context& ctx, const EmVector<T>& vec,
                          std::size_t first, std::size_t last,
                          const std::vector<std::uint64_t>& ranks,
                          std::vector<T>& out, Less less) {
  const std::size_t max_groups = intermixed_max_groups<T>(ctx);
  for (std::size_t lo = 0; lo < ranks.size(); lo += max_groups) {
    const std::size_t hi = std::min(lo + max_groups, ranks.size());
    const std::vector<std::uint64_t> batch(
        ranks.begin() + static_cast<std::ptrdiff_t>(lo),
        ranks.begin() + static_cast<std::ptrdiff_t>(hi));
    auto part = multi_select_base<T, Less>(ctx, vec, first, last, batch, less);
    out.insert(out.end(), part.begin(), part.end());
  }
}

/// Job fingerprint for the multi-select checkpoint (see sort_fingerprint):
/// digests everything that shapes the partition + base-case pass structure —
/// the query ranks included, since they pick the pivots.
template <EmRecord T>
std::uint64_t msel_fingerprint(const Context& ctx, std::size_t first,
                               std::size_t n,
                               const std::vector<std::uint64_t>& rs) {
  std::uint64_t h = fingerprint_mix(kFingerprintSeed, 0x4D53454C);  // "MSEL"
  h = fingerprint_mix(h, first);
  h = fingerprint_mix(h, n);
  h = fingerprint_mix(h, sizeof(T));
  h = fingerprint_mix(h, ctx.block_records<T>());
  h = fingerprint_mix(h, ctx.stream_blocks());
  h = fingerprint_mix(h, ctx.mem_records<T>());
  for (const std::uint64_t r : rs) h = fingerprint_mix(h, r);
  return h;
}

}  // namespace detail

/// Multi-selection over records [first, last) of `input`.
///
/// `ranks` are 1-based ranks within the range, in any order, duplicates
/// allowed.  Returns the element of rank ranks[i] at position i.
/// Cost: O((n/B) log_{M/B}(K/B)) I/Os.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] std::vector<T> multi_select(Context& ctx,
                                          const EmVector<T>& input,
                                          std::size_t first, std::size_t last,
                                          const std::vector<std::uint64_t>& ranks,
                                          Less less = {}) {
  const std::size_t n = last - first;
  const std::size_t k = ranks.size();
  if (k == 0) return {};
  for (const auto r : ranks) {
    if (r < 1 || r > n) {
      throw std::invalid_argument("multi_select: rank out of range");
    }
  }

  // Sorted unique rank values; remember where each original query maps.
  std::vector<std::uint64_t> rs(ranks);
  std::sort(rs.begin(), rs.end());
  rs.erase(std::unique(rs.begin(), rs.end()), rs.end());
  const std::size_t u = rs.size();

  const std::size_t m = intermixed_max_groups<T>(ctx);
  std::vector<T> unique_answers;
  unique_answers.reserve(u);

  // Pass structure via the engine (em/pass_engine.hpp): one base-case pass
  // when all ranks fit one intermixed instance, otherwise a partition pass
  // followed by a base-case pass per piece.  The envelope performs no I/O,
  // so the scan sequence is exactly the seed's.
  PassRunner runner(ctx, {"msel", detail::msel_fingerprint<T>(ctx, first, n, rs)});
  if (u <= m) {
    unique_answers = runner.run("msel/base-case", [&] {
      return detail::multi_select_base<T, Less>(ctx, input, first, last, rs,
                                                less);
    });
  } else {
    // General case: split at every m-th unique rank.  The partition result
    // is installed as pass 1 of a sort-shaped chain: with a journal attached
    // a crash during the base cases resumes with the partition already paid
    // for (a crash *inside* the partition resumes multi_partition's own
    // journaled root as before); without a journal install/take degrade to
    // plain moves — the seed code path.
    PassChain<T> chain(runner, "msel/partition");
    if (!chain.resumed()) {
      const std::size_t g = (u + m - 1) / m;
      std::vector<std::uint64_t> pivot_ranks;
      pivot_ranks.reserve(g - 1);
      for (std::size_t i = 1; i < g; ++i) {
        const std::uint64_t r = rs[i * m - 1];
        if (r < n) pivot_ranks.push_back(r);  // a split at n would be empty
      }
      auto part = runner.run("msel/partition", [&] {
        return multi_partition<T, Less>(ctx, input, first, last, pivot_ranks,
                                        less);
      });
      chain.install(std::move(part.data), std::move(part.bounds));
    }
    const auto& bounds = chain.offsets();

    // Each piece q covers global ranks (pivot_{q-1}, pivot_q]; its targets
    // are a contiguous run of rs.  Dropping a rank-n pivot can at most merge
    // two runs, so the batched base case below runs O(1) times per piece.
    std::size_t i = 0;
    for (std::size_t q = 0; q + 1 < bounds.size(); ++q) {
      const std::uint64_t lo = bounds[q];
      const std::uint64_t hi = bounds[q + 1];
      std::vector<std::uint64_t> local;
      while (i < u && rs[i] <= hi) {
        local.push_back(rs[i] - lo);
        ++i;
      }
      if (local.empty()) continue;
      runner.run("msel/base-case", [&] {
        detail::multi_select_batched<T, Less>(ctx, chain.data(), lo, hi,
                                              local, unique_answers, less);
      });
    }
    (void)chain.take();  // retire the journal entry and free the scratch
  }

  // Fan unique answers back out to the original query order.
  std::vector<T> answers(k);
  for (std::size_t i = 0; i < k; ++i) {
    const auto it = std::lower_bound(rs.begin(), rs.end(), ranks[i]);
    answers[i] = unique_answers[static_cast<std::size_t>(it - rs.begin())];
  }
  return answers;
}

/// Whole-vector convenience overload.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] std::vector<T> multi_select(Context& ctx,
                                          const EmVector<T>& input,
                                          const std::vector<std::uint64_t>& ranks,
                                          Less less = {}) {
  return multi_select<T, Less>(ctx, input, 0, input.size(), ranks, less);
}

}  // namespace emsplit

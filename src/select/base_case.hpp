// base_case.hpp — multi-selection for K <= m ranks in linear I/Os
// (paper §4.2, "Base Case").
//
// Given records [first, last) of an external vector and up to m = Θ(M)
// target ranks, report the element at each rank using O(n/B) I/Os:
//
//   1. linear_splitters() produces a memory-resident splitter set whose
//      buckets are small (our substitute for the Hu et al. [6] subroutine —
//      see DESIGN.md §4).
//   2. One counting scan obtains every bucket's size; prefix sums locate the
//      bucket j(i) containing each target rank r_i and its local rank
//      t_i = r_i - prefix[j(i)-1].
//   3. One more scan builds the intermixed instance: every element of a
//      bucket that contains at least one queried rank is emitted once per
//      querying rank, tagged with that query's group id.
//   4. intermixed_select() solves all K rank queries concurrently.
//
// |D| = sum of the queried buckets' sizes <= K * bucket_bound; with
// K <= Θ(M) and bucket_bound = O((n/M) log(n/M)) this is O(n log(n/M)) in
// the worst case and O(n) whenever K is at most M / log(n/M) — in
// particular, in every configuration the experiments run.  The extra log
// comes from our splitter substitute and is measured, not hidden
// (bench_intermixed sweeps it).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <functional>
#include <stdexcept>
#include <vector>

#include "em/context.hpp"
#include "em/pass_engine.hpp"
#include "em/em_vector.hpp"
#include "em/stream.hpp"
#include "select/intermixed.hpp"
#include "select/linear_splitters.hpp"

namespace emsplit {
namespace detail {

/// Multi-selection over records [first, last) of `vec` at `ranks` (1-based
/// within the range, sorted ascending, size <= intermixed_max_groups).
/// Returns the selected elements in rank order.
template <EmRecord T, typename Less>
std::vector<T> multi_select_base(Context& ctx, const EmVector<T>& vec,
                                 std::size_t first, std::size_t last,
                                 const std::vector<std::uint64_t>& ranks,
                                 Less less) {
  const std::size_t n = last - first;
  const std::size_t k = ranks.size();
  if (k == 0) return {};
  assert(std::is_sorted(ranks.begin(), ranks.end()));
  if (ranks.front() < 1 || ranks.back() > n) {
    throw std::invalid_argument("multi_select_base: rank out of range");
  }
  if (k > intermixed_max_groups<T>(ctx)) {
    throw std::invalid_argument("multi_select_base: too many ranks for M");
  }

  // Steps 1-3 hold the splitters and counters in memory; all of it is
  // released before step 4 hands the full budget to intermixed_select.
  // Each step is one engine pass (step 1's passes trace under the
  // linear_splitters job; step 4's under intermixed's).
  PassRunner runner(ctx, {"msel-base", 0});
  EmVector<Grouped<T>> d;
  std::vector<std::uint64_t> local_ranks(k);
  {
    // Step 1: splitters (memory-resident; <= M/4 records).
    auto split = linear_splitters<T, Less>(ctx, vec, first, last, less);
    const auto& sp = split.splitters;
    const std::size_t num_buckets = sp.size() + 1;
    auto sp_res = ctx.budget().reserve(sp.size() * sizeof(T));

    // An element e belongs to bucket j = index of the first splitter >= e
    // (buckets are (s_{j-1}, s_j], left-closed at -inf, right-open at +inf).
    auto bucket_of = [&](const T& e) -> std::size_t {
      const auto it =
          std::lower_bound(sp.begin(), sp.end(), e,
                           [&](const T& s, const T& x) { return less(s, x); });
      return static_cast<std::size_t>(it - sp.begin());
    };

    // Step 2: bucket sizes -> prefix sums (num_buckets <= M/4 + 1 counters).
    std::vector<std::uint64_t> prefix(num_buckets + 1, 0);
    auto cnt_res =
        ctx.budget().reserve((num_buckets + 1) * sizeof(std::uint64_t));
    runner.run("msel/count-buckets", [&] {
      StreamReader<T> reader(vec, first, last);
      while (!reader.done()) ++prefix[bucket_of(reader.next()) + 1];
    });
    for (std::size_t j = 1; j <= num_buckets; ++j) prefix[j] += prefix[j - 1];

    // Locate each rank's bucket.  Ranks are sorted, buckets scan forward.
    std::vector<std::size_t> rank_bucket(k);
    std::size_t j = 0;
    std::uint64_t d_size = 0;
    for (std::size_t i = 0; i < k; ++i) {
      while (prefix[j + 1] < ranks[i]) ++j;
      rank_bucket[i] = j;
      d_size += prefix[j + 1] - prefix[j];
      local_ranks[i] = ranks[i] - prefix[j];
    }

    // Step 3: build the intermixed instance.  Per bucket, the querying
    // groups form a contiguous run of the sorted rank list.
    runner.run("msel/build-instance", [&] {
      d = EmVector<Grouped<T>>(ctx, static_cast<std::size_t>(d_size));
      StreamReader<T> scan(vec, first, last);
      StreamWriter<Grouped<T>> writer(d);
      while (!scan.done()) {
        const T e = scan.next();
        const std::size_t jb = bucket_of(e);
        // Groups querying bucket jb: binary search the contiguous run.
        auto lo = std::lower_bound(rank_bucket.begin(), rank_bucket.end(), jb);
        auto hi = std::upper_bound(lo, rank_bucket.end(), jb);
        for (auto it = lo; it != hi; ++it) {
          const auto g = static_cast<std::uint64_t>(it - rank_bucket.begin());
          writer.push(Grouped<T>{e, g});
        }
      }
      writer.finish();
    });
  }

  // Step 4: solve all rank queries at once, with the budget back to empty.
  return intermixed_select<T, Less>(ctx, std::move(d), std::move(local_ranks),
                                    less);
}

}  // namespace detail

/// Single-rank selection (the k = 1 special case): the element of rank
/// `rank` (1-based) among records [first, last) in O(n/B) I/Os.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] T select_rank(Context& ctx, const EmVector<T>& vec,
                            std::size_t first, std::size_t last,
                            std::uint64_t rank, Less less = {}) {
  return detail::multi_select_base<T, Less>(ctx, vec, first, last, {rank},
                                            less)[0];
}

/// Whole-vector convenience overload.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] T select_rank(Context& ctx, const EmVector<T>& vec,
                            std::uint64_t rank, Less less = {}) {
  return select_rank<T, Less>(ctx, vec, 0, vec.size(), rank, less);
}

}  // namespace emsplit

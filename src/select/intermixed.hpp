// intermixed.hpp — L-intermixed selection (paper §4.1, Lemma 6).
//
// Input: a dataset D of (value, group) pairs with groups 1..L intermixed in
// arbitrary order, and a target rank t_i for every group.  Output: for each
// group i, the element with the t_i-th smallest value among the group's
// elements.  Cost: O(|D|/B) I/Os, for any L up to Θ(M) concurrent groups.
//
// The algorithm runs L median-of-medians (BFPRT) selection threads
// concurrently over shared scans, using O(1) memory words per thread:
//
//   1. One scan splits every group into quintets and collects each quintet's
//      median into Σ (per-group in-memory state: a 5-slot buffer).
//   2. Recursively find the median μ_i of every Σ_i (a smaller instance of
//      the same problem: |Σ| <= |D|/5 + L).
//   3. One scan computes θ_i = rank of μ_i in D_i.
//   4. One scan builds D': group i keeps its (-inf, μ_i] side if t_i <= θ_i,
//      else its (μ_i, +inf) side with t'_i = t_i - θ_i.  BFPRT guarantees
//      |D'_i| <= 7/10 |D_i| + 3, so |Σ| + |D'| <= 9/10 |D| + 4L, geometric
//      once L <= |D|/80 — hence the group cap exported below.
//
// Memory honesty: while the recursion for μ runs, the parent keeps nothing
// in memory — the target ranks are spilled to a scratch vector on the device
// and reloaded afterwards (O(L/B) I/Os per level, dominated by the scan
// costs).  The Σ-recursion is a true recursive call; the D' step is a tail
// call and is executed as a loop.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cstddef>
#include <functional>
#include <optional>
#include <stdexcept>
#include <vector>

#include "em/context.hpp"
#include "em/pass_engine.hpp"
#include "em/em_vector.hpp"
#include "em/stream.hpp"
#include "em/thread_pool.hpp"
#include "select/grouped.hpp"

namespace emsplit {

/// Largest number of concurrent groups ("m = cM" in the paper) this context
/// supports: the in-memory per-group state (5-slot quintet buffer, counters,
/// medians, ranks) must fit in a third of memory, and L must be small enough
/// that the per-round shrink |D'| <= 7/10 |D| + 3L stays geometric above the
/// in-memory cutoff of M/2 records: 3L <= 0.19 |D| there for L <= M_G/32.
template <EmRecord T>
[[nodiscard]] std::size_t intermixed_max_groups(const Context& ctx) {
  // Per-group bytes across the widest pass: 5 value slots + value-sized
  // median + three 8-byte counters/ranks.
  const std::size_t per_group = 6 * sizeof(T) + 3 * sizeof(std::uint64_t);
  const std::size_t by_memory = (ctx.mem_bytes() / 3) / per_group;
  const std::size_t by_convergence = ctx.mem_bytes() / sizeof(Grouped<T>) / 32;
  return std::max<std::size_t>(1, std::min(by_memory, by_convergence));
}

namespace detail {

/// In-memory solve once |D| fits in a third of memory: bucket by group,
/// nth_element per group.
template <EmRecord T, typename Less>
std::vector<T> intermixed_in_memory(Context& ctx, const EmVector<Grouped<T>>& d,
                                    const std::vector<std::uint64_t>& ranks,
                                    Less less) {
  const std::size_t l = ranks.size();
  auto res = ctx.budget().reserve(d.size() * sizeof(Grouped<T>));
  std::vector<Grouped<T>> all(d.size());
  load_range<Grouped<T>>(d, 0, all);
  std::sort(all.begin(), all.end(),
            [](const Grouped<T>& x, const Grouped<T>& y) {
              return x.group < y.group;
            });
  std::vector<T> answers(l);
  std::size_t lo = 0;
  while (lo < all.size()) {
    std::size_t hi = lo;
    while (hi < all.size() && all[hi].group == all[lo].group) ++hi;
    const std::uint64_t g = all[lo].group;
    if (g >= l) throw std::invalid_argument("intermixed: group id out of range");
    const std::uint64_t t = ranks[g];
    if (t < 1 || t > hi - lo) {
      throw std::invalid_argument("intermixed: rank outside group size");
    }
    const auto first = all.begin() + static_cast<std::ptrdiff_t>(lo);
    const auto last = all.begin() + static_cast<std::ptrdiff_t>(hi);
    const auto nth = first + static_cast<std::ptrdiff_t>(t - 1);
    std::nth_element(first, nth, last,
                     [&](const Grouped<T>& x, const Grouped<T>& y) {
                       return less(x.value, y.value);
                     });
    answers[g] = nth->value;
    lo = hi;
  }
  return answers;
}

/// Median of the first `n` (1..5) entries of a quintet buffer: the element
/// of rank ceil(n/2).
template <typename T, typename Less>
T small_median(std::array<T, 5>& buf, std::size_t n, Less less) {
  assert(n >= 1 && n <= 5);
  std::sort(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(n), less);
  return buf[(n - 1) / 2];
}

/// Below this many resident records a scan batch is not worth a pool
/// dispatch (an execution threshold, not geometry — serial and parallel
/// batches compute the same thing).
inline constexpr std::size_t kScanGrain = 1024;

}  // namespace detail

/// Solve the L-intermixed selection problem.  `data` is consumed (its device
/// space is recycled by the recursion).  `ranks[i]` is the 1-based target
/// rank within group i; every group in [0, ranks.size()) must be non-empty
/// and contain at least ranks[i] elements.  Returns the selected value per
/// group.  Cost: O(|D|/B) I/Os; throws BudgetExceeded-free for any
/// L <= intermixed_max_groups<T>(ctx).
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] std::vector<T> intermixed_select(Context& ctx,
                                               EmVector<Grouped<T>>&& data,
                                               std::vector<std::uint64_t> ranks,
                                               Less less = {}) {
  using G = Grouped<T>;
  // Every BFPRT round is three linear scans (quintet medians, rank count,
  // shrink) plus the rank spill/reload around the Σ-recursion; each is one
  // engine pass.  The recursive call builds its own PassRunner, so nested
  // rounds trace under their own job frame.
  PassRunner runner(ctx, {"intermixed", 0});
  const std::size_t l = ranks.size();
  if (l == 0) return {};
  if (l > intermixed_max_groups<T>(ctx)) {
    throw std::invalid_argument(
        "intermixed_select: more groups than this context supports");
  }
  EmVector<G> d = std::move(data);

  for (;;) {
    if (d.size() <= ctx.mem_records<G>() / 2) {
      return runner.run("intermixed/in-memory", [&] {
        return detail::intermixed_in_memory<T>(ctx, d, ranks, less);
      });
    }

    // --- Pass 1: quintet medians into Σ, counting |Σ_i| per group. -------
    // Data-parallel over each resident block batch by *group ownership*:
    // lane t processes exactly the records whose group id satisfies
    // g % lanes == t, so every group's quintet state is touched by one lane
    // only, in stream order — the same per-group evolution as the serial
    // loop.  A produced median is parked in a per-position slot (at most one
    // median per record position) and the main thread drains the slots in
    // position order, so the Σ writer sees the serial push sequence exactly,
    // for any thread count.
    EmVector<G> sigma(ctx, d.size() / 5 + l);
    std::vector<std::uint64_t> sigma_count(l, 0);
    runner.run("intermixed/quintet-medians", [&] {
      auto res_buf = ctx.budget().reserve(l * (5 * sizeof(T) + 1 + 8));
      std::vector<std::array<T, 5>> quintet(l);
      std::vector<std::uint8_t> fill(l, 0);
      ThreadPool* pool = ctx.cpu_pool();
      const std::size_t lanes = ctx.cpu_lanes();
      constexpr std::uint64_t kNoMedian = ~std::uint64_t{0};
      // Per-position median slots (optional scratch — see LaneScratch).
      LaneScratch<G> medians(
          ctx, pool != nullptr
                   ? ctx.io_tuning().batch_blocks * ctx.block_records<G>()
                   : 0);
      StreamReader<G> reader(d);
      StreamWriter<G> writer(sigma);
      while (!reader.done()) {
        const std::span<const G> sp = reader.peek_span();
        if (sp.size() >= detail::kScanGrain && sp.size() <= medians.size()) {
          pool->run(lanes, [&](std::size_t t) {
            for (std::size_t i = 0; i < sp.size(); ++i) {
              const G& e = sp[i];
              if (e.group % lanes != t) continue;
              if (e.group >= l) {
                throw std::invalid_argument(
                    "intermixed: group id out of range");
              }
              auto& q = quintet[e.group];
              q[fill[e.group]++] = e.value;
              if (fill[e.group] == 5) {
                medians[i] = G{detail::small_median(q, 5, less), e.group};
                fill[e.group] = 0;
              } else {
                medians[i].group = kNoMedian;
              }
            }
          });
          for (std::size_t i = 0; i < sp.size(); ++i) {
            if (medians[i].group == kNoMedian) continue;
            writer.push(medians[i]);
            ++sigma_count[medians[i].group];
          }
        } else {
          for (const G& e : sp) {
            if (e.group >= l) {
              throw std::invalid_argument("intermixed: group id out of range");
            }
            auto& q = quintet[e.group];
            q[fill[e.group]++] = e.value;
            if (fill[e.group] == 5) {
              writer.push(G{detail::small_median(q, 5, less), e.group});
              ++sigma_count[e.group];
              fill[e.group] = 0;
            }
          }
        }
        reader.consume(sp.size());
      }
      for (std::size_t g = 0; g < l; ++g) {
        if (fill[g] > 0) {
          writer.push(G{detail::small_median(quintet[g], fill[g], less),
                        static_cast<std::uint64_t>(g)});
          ++sigma_count[g];
        }
      }
      writer.finish();
    });

    // --- Recurse for the medians μ of Σ_1..Σ_L. --------------------------
    // Spill the parent's ranks to the device so the recursion starts with an
    // empty in-memory footprint (see header comment).
    EmVector<std::uint64_t> rank_spill = runner.run("intermixed/rank-spill", [&] {
      return materialize<std::uint64_t>(
          ctx, std::span<const std::uint64_t>(ranks));
    });
    std::vector<std::uint64_t> median_ranks(l);
    for (std::size_t g = 0; g < l; ++g) {
      median_ranks[g] = (sigma_count[g] + 1) / 2;
    }
    sigma_count.clear();
    sigma_count.shrink_to_fit();
    std::vector<T> mu =
        intermixed_select<T, Less>(ctx, std::move(sigma),
                                   std::move(median_ranks), less);
    runner.run("intermixed/rank-reload", [&] {
      load_range<std::uint64_t>(rank_spill, 0,
                                std::span<std::uint64_t>(ranks));
    });
    rank_spill.reset();

    // --- Pass 2: θ_i = #{e in D_i : e <= μ_i}. ----------------------------
    // Data-parallel rank counting: each resident batch is sliced across the
    // lanes, lane 0 counting into θ itself and lane t > 0 into its own
    // partial array.  The partials are folded into θ in fixed lane order
    // after the scan — integer sums, so θ equals the serial count exactly
    // for any thread count.  The partials are optional per-lane scratch:
    // without budget room the serial scan runs.
    std::vector<std::uint64_t> theta(l, 0);
    {
      auto res_arrays =
          ctx.budget().reserve(l * (sizeof(T) + 2 * sizeof(std::uint64_t)));
      runner.run("intermixed/rank-count", [&] {
        ThreadPool* pool = ctx.cpu_pool();
        const std::size_t lanes = ctx.cpu_lanes();
        // Per-lane partial counts, (lanes - 1) x l (optional scratch).
        LaneScratch<std::uint64_t> partials(
            ctx, pool != nullptr ? (lanes - 1) * l : 0);
        StreamReader<G> reader(d);
        while (!reader.done()) {
          const std::span<const G> sp = reader.peek_span();
          if (partials.available() && sp.size() >= detail::kScanGrain) {
            pool->run(lanes, [&](std::size_t t) {
              std::uint64_t* acc = t == 0 ? theta.data()
                                          : partials.vec().data() + (t - 1) * l;
              const std::size_t beg = sp.size() * t / lanes;
              const std::size_t end = sp.size() * (t + 1) / lanes;
              for (std::size_t i = beg; i < end; ++i) {
                if (!less(mu[sp[i].group], sp[i].value)) ++acc[sp[i].group];
              }
            });
          } else {
            for (const G& e : sp) {
              if (!less(mu[e.group], e.value)) ++theta[e.group];
            }
          }
          reader.consume(sp.size());
        }
        for (std::size_t t = 1; t < lanes; ++t) {
          if (!partials.available()) break;
          for (std::size_t g = 0; g < l; ++g) {
            theta[g] += partials[(t - 1) * l + g];
          }
        }
      });

      // --- Pass 3: build the shrunken instance (D', t'). -----------------
      EmVector<G> next(ctx, d.size());
      runner.run("intermixed/shrink", [&] {
        StreamReader<G> reader(d);
        StreamWriter<G> writer(next);
        while (!reader.done()) {
          const G e = reader.next();
          const std::uint64_t g = e.group;
          const bool go_low = ranks[g] <= theta[g];
          const bool is_low = !less(mu[g], e.value);  // e.value <= mu[g]
          if (go_low == is_low) writer.push(e);
        }
        writer.finish();
      });
      for (std::size_t g = 0; g < l; ++g) {
        if (ranks[g] > theta[g]) ranks[g] -= theta[g];
      }
      d = std::move(next);  // frees the old level's device space
    }
  }
}

}  // namespace emsplit

// grouped.hpp — the record type of L-intermixed selection (paper §4.1).
//
// An element of the intermixed dataset D is a pair (key, group id).  The
// group id addresses one of the L concurrent selection "threads"; the value
// carries the full record (indivisibility: satellite data travels with the
// key).
#pragma once

#include <cstdint>

#include "em/em_vector.hpp"

namespace emsplit {

template <EmRecord T>
struct Grouped {
  T value{};
  std::uint64_t group = 0;

  friend constexpr bool operator==(const Grouped&, const Grouped&) = default;
};

}  // namespace emsplit

// distributed.hpp — W-worker multi-partition and distribution sort.
//
// The coordinator side of the distributed protocol (paper §3-§5 recast for
// the PEM shape of em/worker_group.hpp):
//
//   pass 1  "runs"     One formation round: workers sort the W-free chunk
//                      grid into runs and send back every stride-th record
//                      of each sorted run — the sampled pivot exchange.
//   pass 2  "select"   The coordinator turns the merged sample into splitter
//                      candidates at the target ranks; a select round
//                      measures every candidate's *exact* per-run cuts
//                      (distributed multi-selection); refinement rounds add
//                      candidates inside any part still larger than the
//                      in-memory bound until the sample is exhausted.
//   pass 3  "scatter"  Workers materialize the splitter-defined parts into
//                      the output extent — each reads exactly the extents of
//                      the peer runs that land in its parts — and the
//                      coordinator stitches the block-boundary edges.
//
// Checkpointing rides the same PassChain as the classic sorts: pass 1
// publishes the runs extent (offsets = the chunk grid), pass 2 the finished
// output (offsets = encoded spans).  The fingerprint excludes W, so a job
// killed under one worker count resumes under any other; a resume at pass 1
// re-derives the (volatile) samples with a resample round and repays only
// the interrupted pass.
//
// Output contract: identical bytes and identical logical IoStats totals for
// every W and both execution modes — W is geometry, never output.  The
// coordinator's stitch writes are attributed to the owning worker's trace
// row, so the per-worker rows of every pass partition the pass total
// exactly.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "dist/dist_plan.hpp"
#include "dist/dist_rounds.hpp"
#include "em/context.hpp"
#include "em/em_vector.hpp"
#include "em/pass_engine.hpp"
#include "em/stream.hpp"
#include "em/worker_group.hpp"

namespace emsplit::dist {

/// Result of a distributed job: the permuted (or fully sorted) data, the
/// realized partition bounds, and the realized spans tiling [0, n).
template <EmRecord T>
struct DistResult {
  EmVector<T> data;
  std::vector<std::uint64_t> bounds;
  std::vector<DistSpan> spans;
};

namespace detail {

/// One measured splitter: its value, exact global rank, and per-run cuts.
template <EmRecord T>
struct Splitter {
  T value;
  std::uint64_t rank = 0;
  std::vector<std::uint64_t> cuts;
};

/// Fold one round's per-worker rows into the pass accumulator (a pass may
/// span several rounds — resample + select + refinements — but emits one row
/// per worker).
inline void merge_worker_rows(std::vector<PassWorkerIo>& acc,
                              std::vector<PassWorkerIo> add) {
  if (acc.empty()) {
    acc = std::move(add);
    return;
  }
  for (const PassWorkerIo& r : add) {
    if (r.worker >= acc.size()) acc.resize(r.worker + 1);
    acc[r.worker].worker = r.worker;
    acc[r.worker].io += r.io;
    acc[r.worker].seconds += r.seconds;
    acc[r.worker].barrier_seconds += r.barrier_seconds;
    // Peak resident bytes is a high-water mark, not a flow: max, not sum.
    acc[r.worker].peak_bytes = std::max(acc[r.worker].peak_bytes, r.peak_bytes);
  }
}

/// Splitter candidates for the target ranks, read off the sorted sample at
/// its stride: the sample at index q estimates rank (q + 1) * stride.
/// Returns a strictly increasing value sequence (duplicates collapse).
template <EmRecord T, typename Less>
std::vector<T> pick_candidates(const std::vector<T>& samples,
                               const std::vector<std::uint64_t>& targets,
                               std::size_t stride, Less less) {
  std::vector<T> cands;
  if (samples.empty()) return cands;
  for (const std::uint64_t r : targets) {
    std::size_t q = static_cast<std::size_t>(r) / stride;
    if (q > 0) --q;
    q = std::min(q, samples.size() - 1);
    const T& v = samples[q];
    if (cands.empty() || less(cands.back(), v)) cands.push_back(v);
  }
  return cands;
}

/// Run one select round over `cands` and assemble the measured splitters.
template <EmRecord T, typename Less>
std::vector<Splitter<T>> measure_candidates(WorkerGroup& group,
                                            const DistPlan& p,
                                            const BlockRange& runs,
                                            const std::vector<T>& cands,
                                            Less less,
                                            std::vector<PassWorkerIo>& acc) {
  std::vector<Splitter<T>> out;
  if (cands.empty()) return out;
  std::vector<PassWorkerIo> rows;
  const std::vector<std::uint64_t> cuts =
      select_round<T>(group, p, runs, cands, less, rows);
  merge_worker_rows(acc, std::move(rows));
  const std::size_t K = cands.size();
  out.reserve(K);
  for (std::size_t i = 0; i < K; ++i) {
    Splitter<T> s;
    s.value = cands[i];
    s.cuts.resize(p.n_runs);
    for (std::size_t u = 0; u < p.n_runs; ++u) {
      s.cuts[u] = cuts[u * K + i];
      s.rank += s.cuts[u];
    }
    out.push_back(std::move(s));
  }
  return out;
}

/// Merge measured splitters into the working set, keeping ranks strictly
/// increasing and strictly inside (0, n).  Equal ranks collapse (equivalent
/// values always measure equal ranks, so per-run cuts stay monotone across
/// the surviving rows).
template <EmRecord T>
void merge_splitters(std::vector<Splitter<T>>& base,
                     std::vector<Splitter<T>> add, std::uint64_t n) {
  for (Splitter<T>& s : add) base.push_back(std::move(s));
  std::sort(base.begin(), base.end(),
            [](const Splitter<T>& a, const Splitter<T>& b) {
              return a.rank < b.rank;
            });
  std::vector<Splitter<T>> keep;
  keep.reserve(base.size());
  for (Splitter<T>& s : base) {
    if (s.rank == 0 || s.rank == n) continue;
    if (!keep.empty() && keep.back().rank == s.rank) continue;
    keep.push_back(std::move(s));
  }
  base = std::move(keep);
}

/// Candidates for the refinement rounds: for every part still larger than
/// the in-memory bound, sample values strictly inside its value range, one
/// per `limit` of excess.  Empty when the sample has no distinct values left
/// there (a duplicate-dominated part — the scatter's streaming merge handles
/// it at the same logical I/O).
template <EmRecord T, typename Less>
std::vector<T> refinement_candidates(const std::vector<T>& samples,
                                     const std::vector<Splitter<T>>& splits,
                                     const DistPlan& p, std::uint64_t n,
                                     Less less) {
  std::vector<T> extra;
  const std::size_t P = splits.size() + 1;
  for (std::size_t i = 0; i < P; ++i) {
    const std::uint64_t lo = i == 0 ? 0 : splits[i - 1].rank;
    const std::uint64_t hi = i == P - 1 ? n : splits[i].rank;
    if (hi - lo <= p.limit) continue;
    const auto first =
        i == 0 ? samples.begin()
               : std::upper_bound(samples.begin(), samples.end(),
                                  splits[i - 1].value, less);
    const auto last = i == P - 1
                          ? samples.end()
                          : std::lower_bound(samples.begin(), samples.end(),
                                             splits[i].value, less);
    if (first >= last) continue;
    const std::size_t avail = static_cast<std::size_t>(last - first);
    const std::size_t need =
        static_cast<std::size_t>((hi - lo) / p.limit);
    for (std::size_t k = 1; k <= need; ++k) {
      const T& v =
          *(first + static_cast<std::ptrdiff_t>((avail * k) / (need + 1)));
      if (extra.empty() || less(extra.back(), v)) extra.push_back(v);
    }
  }
  return extra;
}

/// The part `pos` falls into, by its output range.
inline std::size_t part_of(const std::vector<PartDef>& parts,
                           std::uint64_t pos) {
  std::size_t lo = 0;
  std::size_t hi = parts.size();
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (parts[mid].lo <= pos) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Assemble and write every block-boundary block from the edge records the
/// scatter round sent back.  Blocks are written once, in ascending order,
/// and each write's I/O delta is attributed to the trace row of the worker
/// owning the part the block's first record belongs to — keeping the
/// per-worker rows an exact partition of the pass total.
template <EmRecord T>
void stitch_edges(Context& ctx, EmVector<T>& out,
                  const std::vector<PartDef>& parts,
                  std::vector<PartEdges<T>>& edges, std::size_t workers,
                  std::vector<PassWorkerIo>& rows) {
  const std::size_t b = out.block_records();
  const std::size_t n = out.size();
  std::vector<std::pair<std::uint64_t, T>> recs;
  for (PartEdges<T>& e : edges) {
    const PartDef& part = parts[e.part];
    const EdgeBounds eb =
        edge_bounds(static_cast<std::size_t>(part.lo),
                    static_cast<std::size_t>(part.hi), b);
    for (std::size_t k = 0; k < e.head.size(); ++k) {
      recs.emplace_back(part.lo + k, e.head[k]);
    }
    for (std::size_t k = 0; k < e.tail.size(); ++k) {
      recs.emplace_back(eb.tail_start + k, e.tail[k]);
    }
  }
  std::sort(recs.begin(), recs.end(),
            [](const auto& a, const auto& c) { return a.first < c.first; });
  std::vector<T> blk(b);
  std::size_t i = 0;
  while (i < recs.size()) {
    const std::size_t base =
        static_cast<std::size_t>(recs[i].first) / b * b;
    const std::size_t len = std::min(b, n - base);
    std::size_t j = i;
    for (; j < recs.size() && recs[j].first < base + len; ++j) {
      if (recs[j].first != base + (j - i)) {
        throw std::logic_error("dist: edge stitch gap");
      }
      blk[j - i] = recs[j].second;
    }
    if (j - i != len) {
      throw std::logic_error("dist: edge stitch incomplete block");
    }
    const std::size_t owner =
        unit_owner(parts.size(), workers, part_of(parts, base));
    const IoStats before = ctx.io();
    store_range<T>(out, base, std::span<const T>(blk.data(), len));
    if (owner < rows.size()) rows[owner].io += ctx.io() - before;
    i = j;
  }
}

/// Realized spans: the output axis cut at every part boundary and every
/// requested bound, each piece carrying its part's sort flag.
inline std::vector<DistSpan> build_spans(
    const std::vector<PartDef>& parts,
    const std::vector<std::uint64_t>& bounds) {
  std::vector<DistSpan> spans;
  for (const PartDef& part : parts) {
    std::uint64_t lo = part.lo;
    const auto first =
        std::upper_bound(bounds.begin(), bounds.end(), part.lo);
    for (auto it = first; it != bounds.end() && *it < part.hi; ++it) {
      spans.push_back({lo, *it, part.sort});
      lo = *it;
    }
    if (lo < part.hi) spans.push_back({lo, part.hi, part.sort});
  }
  return spans;
}

/// All-sorted spans for the degenerate single-run job.
inline std::vector<DistSpan> sorted_spans(
    const std::vector<std::uint64_t>& bounds) {
  std::vector<DistSpan> spans;
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    if (bounds[i] < bounds[i + 1]) {
      spans.push_back({bounds[i], bounds[i + 1], true});
    }
  }
  return spans;
}

/// The driver behind both entry points.  `sort_all` selects the full sort
/// (splitter targets on the `target` grid, every part emitted sorted); with
/// it off only parts containing a requested rank are sorted and the rest are
/// concatenated — exactly the classic multi-partition contract.
template <EmRecord T, typename Less>
DistResult<T> dist_run(Context& ctx, const EmVector<T>& input,
                       const std::vector<std::uint64_t>& ranks, bool sort_all,
                       Less less) {
  const std::size_t n = input.size();
  const DistPlan p = make_dist_plan<T>(ctx, n);
  const char* job = sort_all ? "dsort" : "mpart";
  PassRunner runner(
      ctx, {job, dist_fingerprint<T>(
                     ctx, n, sort_all ? kDistSortTag : kDistPartTag, ranks)});
  // The coordinator's planning-table quarter (samples, cut matrix, edges);
  // worker units budget within the remainder (see dist_plan.hpp).
  auto tables_res = ctx.budget().reserve(ctx.mem_bytes() / 4);
  WorkerGroup group(ctx);
  PassChain<T> chain(runner,
                     sort_all ? "dsort/dist-resume" : "mpart/dist-resume");

  std::vector<T> samples;
  bool have_samples = false;
  if (!chain.resumed()) {
    EmVector<T> runs(ctx, n);
    runs.set_size(n);
    runner.run(sort_all ? "dsort/dist-runs" : "mpart/dist-runs", [&] {
      std::vector<PassWorkerIo> rows;
      samples = formation_round<T>(group, p, input.extent(), runs.extent(),
                                   less, rows);
      ctx.note_pass_workers(std::move(rows));
    });
    std::sort(samples.begin(), samples.end(), less);
    have_samples = true;
    typename PassChain<T>::Offsets offs;
    for (std::size_t lo = 0; lo < n; lo += p.chunk) offs.push_back(lo);
    offs.push_back(n);
    chain.install(std::move(runs), std::move(offs));
  }

  DistResult<T> res;
  res.bounds.push_back(0);
  for (const std::uint64_t r : ranks) res.bounds.push_back(r);
  res.bounds.push_back(n);

  if (chain.pass() >= 2) {  // resumed past the scatter: output is journaled
    res.spans = decode_dist_spans(chain.offsets());
    res.data = chain.take();
    return res;
  }

  if (p.n_runs <= 1) {  // one chunk: the formation run is the sorted output
    res.spans = sorted_spans(res.bounds);
    res.data = chain.take();
    return res;
  }

  // --- multi-selection: pivot exchange, then cut refinement ---------------
  std::vector<Splitter<T>> splits;
  runner.run(sort_all ? "dsort/dist-select" : "mpart/dist-select", [&] {
    std::vector<PassWorkerIo> acc;
    if (!have_samples) {  // resumed at pass 1: the samples died, the runs not
      std::vector<PassWorkerIo> rows;
      samples = resample_round<T>(group, p, chain.data().extent(), rows);
      std::sort(samples.begin(), samples.end(), less);
      merge_worker_rows(acc, std::move(rows));
    }
    std::vector<std::uint64_t> targets;
    if (sort_all) {
      for (std::uint64_t r = p.target; r < n; r += p.target) {
        targets.push_back(r);
      }
    } else {
      targets = ranks;
    }
    const std::vector<T> cands =
        pick_candidates<T>(samples, targets, p.stride, less);
    merge_splitters<T>(
        splits,
        measure_candidates<T>(group, p, chain.data().extent(), cands, less,
                              acc),
        n);
    for (int iter = 0; iter < 2; ++iter) {
      const std::vector<T> extra =
          refinement_candidates<T>(samples, splits, p, n, less);
      if (extra.empty()) break;
      const std::size_t before = splits.size();
      merge_splitters<T>(
          splits,
          measure_candidates<T>(group, p, chain.data().extent(), extra, less,
                                acc),
          n);
      if (splits.size() == before) break;
    }
    ctx.note_pass_workers(std::move(acc));
  });

  // --- scatter: parts to their final ranges, edges stitched ---------------
  const std::size_t U = p.n_runs;
  const std::size_t P = splits.size() + 1;
  std::vector<PartDef> parts(P);
  std::vector<std::uint64_t> seg_cuts((P + 1) * U, 0);
  for (std::size_t u = 0; u < U; ++u) {
    seg_cuts[P * U + u] =
        std::min(p.n, (u + 1) * p.chunk) - u * p.chunk;  // run lengths
  }
  for (std::size_t i = 1; i < P; ++i) {
    for (std::size_t u = 0; u < U; ++u) {
      seg_cuts[i * U + u] = splits[i - 1].cuts[u];
    }
  }
  for (std::size_t i = 0; i < P; ++i) {
    parts[i].lo = i == 0 ? 0 : splits[i - 1].rank;
    parts[i].hi = i == P - 1 ? n : splits[i].rank;
    if (sort_all) {
      parts[i].sort = true;
    } else {
      // A part is emitted sorted iff a requested rank cuts strictly inside
      // it; sorting realizes that rank exactly.
      const auto it = std::upper_bound(ranks.begin(), ranks.end(), parts[i].lo);
      parts[i].sort = it != ranks.end() && *it < parts[i].hi;
    }
  }

  EmVector<T> out(ctx, n);
  out.set_size(n);
  runner.run(sort_all ? "dsort/dist-scatter" : "mpart/dist-scatter", [&] {
    std::vector<PassWorkerIo> rows;
    // The stitch attributes by the width the scatter bodies actually ran at;
    // workers() may shrink (elastic degradation) once the round completes.
    const std::size_t scatter_w = group.workers();
    std::vector<PartEdges<T>> edges =
        scatter_round<T>(group, p, chain.data().extent(), out.extent(), parts,
                         seg_cuts, less, rows);
    stitch_edges<T>(ctx, out, parts, edges, scatter_w, rows);
    ctx.note_pass_workers(std::move(rows));
  });

  res.spans = sort_all ? std::vector<DistSpan>{{0, n, true}}
                       : build_spans(parts, res.bounds);
  chain.install(std::move(out), encode_dist_spans(res.spans));
  res.data = chain.take();
  return res;
}

}  // namespace detail

/// Distributed full sort: bit-identical to itself under every worker count
/// and execution mode, fully sorted output.  Call only when
/// dist_supported<T>(ctx, input.size(), 0) holds.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] EmVector<T> dist_distribution_sort(Context& ctx,
                                                 const EmVector<T>& input,
                                                 Less less = {}) {
  return detail::dist_run<T, Less>(ctx, input, {}, /*sort_all=*/true, less)
      .data;
}

/// Distributed multi-partition at the given split ranks (strictly increasing,
/// strictly inside (0, n)).  Realizes every requested rank exactly; the spans
/// report which pieces came out sorted.  Call only when
/// dist_supported<T>(ctx, input.size(), ranks.size()) holds.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] DistResult<T> dist_multi_partition(
    Context& ctx, const EmVector<T>& input,
    const std::vector<std::uint64_t>& ranks, Less less = {}) {
  return detail::dist_run<T, Less>(ctx, input, ranks, /*sort_all=*/false,
                                   less);
}

}  // namespace emsplit::dist

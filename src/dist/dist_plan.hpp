// dist_plan.hpp — geometry of a distributed partition/sort job.
//
// The distributed passes (dist_rounds.hpp, distributed.hpp) obey one
// invariant above all others: **W is geometry, never output**.  Every pass
// decomposes into *work units* whose shape depends only on (n, record size,
// B, M, stream tuning) — never on the worker count — and W merely assigns
// units to workers.  Running all units on one worker or spreading them over
// four executes the identical per-unit I/O schedule against disjoint block
// ranges, so logical IoStats totals and output bytes are equal for every W.
// This header computes that W-free shape:
//
//   * chunk    — the run length of the formation pass.  A multiple of B, so
//                the uniform chunk grid {0, C, 2C, ...} never puts two
//                workers' records in one block (a copy-on-write child whose
//                sibling wrote the other half of a shared block would lose
//                the sibling's half on its own read-modify-write).
//   * stride   — the sample stride of the pivot exchange: every stride-th
//                record of each sorted run, so a splitter candidate's true
//                rank differs from its sampled rank by < U * stride
//                (cf. the paper's per-piece sampling bound).
//   * target   — the part size the splitter grid aims for (chunk / 2, so a
//                part whose candidate ranks land within the sampling error
//                still fits the in-memory bound `limit` = chunk).
//
// The memory plan splits M once and for all: at most 1/4 for the
// coordinator's planning tables (samples, cut matrix, edge records) and at
// most 5/8 for one worker unit (gather buffer or merge cursors, plus the
// part writer and two staging blocks).  Both coexist in inline mode, where
// worker units run in the coordinator's own budget.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "em/checkpoint.hpp"
#include "em/context.hpp"
#include "em/em_vector.hpp"

namespace emsplit::dist {

/// The W-free shape of one distributed job over n records.
struct DistPlan {
  std::size_t n = 0;       ///< record count
  std::size_t b = 0;       ///< records per block
  std::size_t sbr = 0;     ///< records per stream batch (stream_blocks * b)
  std::size_t chunk = 0;   ///< formation run length (multiple of b)
  std::size_t n_runs = 0;  ///< U = ceil(n / chunk)
  std::size_t stride = 0;  ///< sample stride within each sorted run
  std::size_t target = 0;  ///< splitter grid spacing (part size aim)
  std::size_t limit = 0;   ///< max part loadable for an in-memory sort
};

/// The per-worker memory share the plan is computed against: M divided by
/// WorkerTuning::mem_workers, floored at the model's 2B minimum.  mem_workers
/// is geometry (it shapes chunk and therefore the unit grid) but W-free, so
/// any W <= mem_workers keeps the aggregate worker footprint <= M while every
/// W at a fixed mem_workers stays bit-identical.
template <EmRecord T>
[[nodiscard]] std::size_t dist_worker_mem(const Context& ctx) {
  const std::size_t mw = std::max<std::size_t>(
      1, ctx.worker_tuning().mem_workers);
  return std::max(ctx.mem_records<T>() / mw, 2 * ctx.block_records<T>());
}

template <EmRecord T>
[[nodiscard]] DistPlan make_dist_plan(const Context& ctx, std::size_t n) {
  DistPlan p;
  p.n = n;
  p.b = ctx.block_records<T>();
  p.sbr = ctx.stream_blocks() * p.b;
  const std::size_t mem = dist_worker_mem<T>(ctx);
  // Worker-unit cap: 5/8 of the per-worker share, minus the part writer's
  // buffer and staging blocks, floored to a whole number of blocks (the grid
  // alignment above).
  const std::size_t cap = mem - 3 * (mem / 8);
  std::size_t chunk = cap > p.sbr + 3 * p.b ? cap - p.sbr - 3 * p.b : p.b;
  chunk = std::max(p.b, chunk / p.b * p.b);
  p.chunk = chunk;
  p.n_runs = n == 0 ? 0 : (n + chunk - 1) / chunk;
  p.target = std::max<std::size_t>(1, chunk / 2);
  p.limit = chunk;
  std::size_t s = std::max<std::size_t>(
      1, p.target / (2 * std::max<std::size_t>(1, p.n_runs)));
  // Cap total samples at M/16 records so the coordinator's copy stays well
  // inside the planning-table quarter.
  const std::size_t max_samples = std::max<std::size_t>(64, mem / 16);
  if (n / s > max_samples) s = (n + max_samples - 1) / max_samples;
  p.stride = s;
  return p;
}

/// Can the distributed protocol run this job within the memory plan?  False
/// routes the caller to the classic single-process path (identical output —
/// the fallback is itself trivially W-invariant).  `extra_ranks` is the
/// requested split-rank count (0 for a full sort); it widens the cut matrix.
///
/// The `used() == 0` guard rejects *nested* invocations: an algorithm that
/// calls multi_partition while holding reservations (the splitter recursion,
/// a bucket leaf) must not stack a second full memory plan on top.
template <EmRecord T>
[[nodiscard]] bool dist_supported(const Context& ctx, std::size_t n,
                                  std::size_t extra_ranks) {
  if (ctx.workers() == 0 || n == 0) return false;
  if (ctx.budget().used() != 0) return false;
  const DistPlan p = make_dist_plan<T>(ctx, n);
  if (p.n_runs < 2) return true;  // one run: the formation pass finishes it
  // Worker units live in the per-worker share; the coordinator's planning
  // tables (cut matrix, edges) live in the full-M quarter/eighth below.
  const std::size_t mem = dist_worker_mem<T>(ctx);
  const std::size_t cap = mem - 3 * (mem / 8);
  // Streaming merge of an oversized part: one cursor block per run, the part
  // writer's buffer, staging.
  if ((p.n_runs + 1) * p.b + p.sbr + 2 * p.b > cap) return false;
  // Cut matrix: every splitter's per-run cut positions, as u64 ranks.
  const std::size_t max_splitters = n / p.target + extra_ranks + 2;
  if (max_splitters > (ctx.mem_bytes() / 16) /
                          ((p.n_runs + 1) * sizeof(std::uint64_t))) {
    return false;
  }
  // Edge records the coordinator stitches: < 2 blocks per part.
  if (max_splitters + 1 > (ctx.mem_bytes() / 8) / (2 * p.b * sizeof(T))) {
    return false;
  }
  return true;
}

/// Job fingerprint for the distributed chain.  Digests everything that
/// shapes the pass structure — and deliberately *not* W: a job killed under
/// one worker count resumes under any other (the units, and therefore the
/// journaled extents, are identical).
template <EmRecord T>
[[nodiscard]] std::uint64_t dist_fingerprint(
    const Context& ctx, std::size_t n, std::uint64_t tag,
    const std::vector<std::uint64_t>& ranks) {
  std::uint64_t h = fingerprint_mix(kFingerprintSeed, tag);
  h = fingerprint_mix(h, n);
  h = fingerprint_mix(h, sizeof(T));
  h = fingerprint_mix(h, ctx.block_records<T>());
  h = fingerprint_mix(h, ctx.stream_blocks());
  h = fingerprint_mix(h, ctx.mem_records<T>());
  // mem_workers shapes the unit grid (like M itself); W still never does.
  h = fingerprint_mix(h, ctx.worker_tuning().mem_workers);
  h = fingerprint_mix(h, ranks.size());
  for (const std::uint64_t r : ranks) h = fingerprint_mix(h, r);
  return h;
}

inline constexpr std::uint64_t kDistSortTag = 0x44535453;  // "DSTS"
inline constexpr std::uint64_t kDistPartTag = 0x44535450;  // "DSTP"

/// Contiguous balanced unit assignment: worker w owns units
/// [unit_begin(total, W, w), unit_begin(total, W, w + 1)).  Pure arithmetic,
/// identical in every process.
inline std::size_t unit_begin(std::size_t total, std::size_t workers,
                              std::size_t w) {
  return total * w / workers;
}

/// The worker owning unit `u` under the same assignment.
inline std::size_t unit_owner(std::size_t total, std::size_t workers,
                              std::size_t u) {
  std::size_t w = u * workers / total;  // first guess, then walk the rounding
  while (unit_begin(total, workers, w + 1) <= u) ++w;
  while (unit_begin(total, workers, w) > u) --w;
  return w;
}

/// One realized output piece of a distributed job, tiling [0, n).  Same
/// shape as MultiPartitionSpan, redeclared here so the partition layer can
/// include this header without a cycle.
struct DistSpan {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  bool sorted = false;
};

/// Spans pack into the journal's per-pass offsets array exactly like the
/// distribution sort's encoding: (hi << 1) | sorted, lo implicit.
inline std::vector<std::uint64_t> encode_dist_spans(
    const std::vector<DistSpan>& spans) {
  std::vector<std::uint64_t> enc;
  enc.reserve(spans.size());
  for (const DistSpan& s : spans) enc.push_back((s.hi << 1) | (s.sorted ? 1 : 0));
  return enc;
}

inline std::vector<DistSpan> decode_dist_spans(
    const std::vector<std::uint64_t>& enc) {
  std::vector<DistSpan> spans;
  spans.reserve(enc.size());
  std::uint64_t lo = 0;
  for (const std::uint64_t e : enc) {
    spans.push_back({lo, e >> 1, (e & 1) != 0});
    lo = e >> 1;
  }
  return spans;
}

}  // namespace emsplit::dist

// dist_rounds.hpp — the worker-side bodies of the distributed passes.
//
// Each function here builds one WorkerGroup round body: a closure run once
// per worker (in a forked child or inline in the coordinator) that performs
// that worker's contiguous slice of the round's W-free unit list and returns
// a wire-framed result blob.  Bodies follow the WorkerGroup contract — no
// extent allocation, no coordinator state, everything needed inherited by
// value or reached through the (copy-on-write or shared) address space.
//
// Round inventory, in pass order:
//
//   formation  — unit = one chunk of the input grid: load, sort in memory,
//                store as a run at the same offsets, and keep every
//                stride-th record as a sample (paper §3's per-piece sample).
//   resample   — re-derives exactly the formation samples from the journaled
//                runs after a resume (the samples died with the crashed
//                coordinator; the runs did not).
//   select     — unit = one run: for every splitter candidate, find the
//                run-local cut (lower bound) by binary search over block
//                first-records — O(log(chunk/B)) block reads per cut, the
//                external-memory analogue of the paper's multi-selection
//                probe.  Summed over runs the cuts are *exact* global ranks.
//   scatter    — unit = one output part: gather its per-run segments and
//                emit them sorted (in-memory or by streaming k-way merge) or
//                concatenated (a finished partition run).  Interior whole
//                blocks are written directly; the few records sharing a
//                boundary block with a neighbouring part travel back on the
//                wire for the coordinator to stitch (merge_scatter below) —
//                two workers must never read-modify-write one block.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <queue>
#include <span>
#include <vector>

#include "dist/dist_plan.hpp"
#include "em/context.hpp"
#include "em/em_vector.hpp"
#include "em/stream.hpp"
#include "em/worker_group.hpp"

namespace emsplit::dist {

/// Block-boundary split of one part's output range [lo, hi): records in
/// [lo, head_end) and [tail_start, hi) share their block with a neighbour
/// (or are the final partial block) and must be stitched by the coordinator;
/// [head_end, tail_start) is whole blocks the owning worker writes itself.
struct EdgeBounds {
  std::size_t head_end = 0;
  std::size_t tail_start = 0;
};

inline EdgeBounds edge_bounds(std::size_t lo, std::size_t hi, std::size_t b) {
  EdgeBounds e;
  e.head_end = std::min((lo + b - 1) / b * b, hi);
  e.tail_start = std::max(hi / b * b, e.head_end);
  return e;
}

/// Streams one part's records into its output range: interior whole blocks
/// go to the device through an aligned bounded buffer; head and tail edge
/// records accumulate for the coordinator.  Every store lands on a block
/// boundary with a whole-block length, so no read-modify-write ever touches
/// a block another worker also owns.
template <EmRecord T>
class PartWriter {
 public:
  PartWriter(EmVector<T>& out, std::size_t lo, std::size_t hi,
             std::size_t buf_records)
      : out_(&out), lo_(lo), hi_(hi), pos_(lo) {
    const std::size_t b = out.block_records();
    const EdgeBounds e = edge_bounds(lo, hi, b);
    head_end_ = e.head_end;
    tail_start_ = e.tail_start;
    cursor_ = head_end_;
    cap_ = std::max(b, buf_records / b * b);  // flushes stay block-aligned
    buf_.reserve(std::min(cap_, tail_start_ - head_end_));
  }

  void push(const T& v) {
    if (pos_ < head_end_) {
      head_.push_back(v);
    } else if (pos_ >= tail_start_) {
      tail_.push_back(v);
    } else {
      buf_.push_back(v);
      if (buf_.size() == cap_) flush();
    }
    ++pos_;
  }

  void push_span(std::span<const T> s) {
    for (const T& v : s) push(v);
  }

  void finish() {
    flush();
    assert(pos_ == hi_);
  }

  [[nodiscard]] const std::vector<T>& head() const noexcept { return head_; }
  [[nodiscard]] const std::vector<T>& tail() const noexcept { return tail_; }

 private:
  void flush() {
    if (buf_.empty()) return;
    store_range<T>(*out_, cursor_, std::span<const T>(buf_));
    cursor_ += buf_.size();
    buf_.clear();
  }

  EmVector<T>* out_;
  std::size_t lo_;
  std::size_t hi_;
  std::size_t head_end_;
  std::size_t tail_start_;
  std::size_t pos_;
  std::size_t cursor_;
  std::size_t cap_;
  std::vector<T> buf_;
  std::vector<T> head_;
  std::vector<T> tail_;
};

/// Run-formation round.  Returns the concatenated samples of every worker in
/// worker (= run) order; the caller sorts them.  `input` and `runs` travel
/// as extents so each body binds views through its own context.
template <EmRecord T, typename Less>
std::vector<T> formation_round(WorkerGroup& group, const DistPlan& p,
                               const BlockRange& input, const BlockRange& runs,
                               Less less, std::vector<PassWorkerIo>& rows_out) {
  const std::size_t W = group.workers();
  const auto body = [&p, &input, &runs, less,
                     W](Context& wctx, std::size_t w) -> std::vector<std::byte> {
    const EmVector<T> in_v =
        EmVector<T>::adopt(wctx, input, p.n, /*owning=*/false);
    EmVector<T> runs_v = EmVector<T>::adopt(wctx, runs, p.n, /*owning=*/false);
    auto res = wctx.budget().reserve((p.chunk + p.b) * sizeof(T));
    std::vector<T> buf;
    buf.reserve(p.chunk);
    std::vector<T> samples;
    for (std::size_t u = unit_begin(p.n_runs, W, w);
         u < unit_begin(p.n_runs, W, w + 1); ++u) {
      const std::size_t lo = u * p.chunk;
      const std::size_t hi = std::min(p.n, lo + p.chunk);
      buf.resize(hi - lo);
      load_range<T>(in_v, lo, std::span<T>(buf));
      std::sort(buf.begin(), buf.end(), less);
      store_range<T>(runs_v, lo, std::span<const T>(buf));
      for (std::size_t j = p.stride; j <= buf.size(); j += p.stride) {
        samples.push_back(buf[j - 1]);
      }
    }
    WireWriter wire;
    wire.pod_span<T>(std::span<const T>(samples));
    return wire.take();
  };
  RoundOutcome out = group.round("dist/formation", body);
  std::vector<T> samples;
  for (std::size_t w = 0; w < W; ++w) {
    WireReader rd(out.payloads[w]);
    std::vector<T> part = rd.template pod_vec<T>();
    samples.insert(samples.end(), part.begin(), part.end());
  }
  rows_out = std::move(out.rows);
  return samples;
}

/// Resample round: reproduce the formation samples by reading them back out
/// of the journaled runs (same positions, same multiset) after a resume.
template <EmRecord T>
std::vector<T> resample_round(WorkerGroup& group, const DistPlan& p,
                              const BlockRange& runs,
                              std::vector<PassWorkerIo>& rows_out) {
  const std::size_t W = group.workers();
  const auto body = [&p, &runs,
                     W](Context& wctx, std::size_t w) -> std::vector<std::byte> {
    const EmVector<T> runs_v =
        EmVector<T>::adopt(wctx, runs, p.n, /*owning=*/false);
    auto res = wctx.budget().reserve(p.b * sizeof(T));
    std::vector<T> blk(p.b);
    std::vector<T> samples;
    std::size_t cur = static_cast<std::size_t>(-1);
    for (std::size_t u = unit_begin(p.n_runs, W, w);
         u < unit_begin(p.n_runs, W, w + 1); ++u) {
      const std::size_t lo = u * p.chunk;
      const std::size_t len = std::min(p.n, lo + p.chunk) - lo;
      for (std::size_t j = p.stride; j <= len; j += p.stride) {
        const std::size_t pos = lo + j - 1;
        const std::size_t blkno = pos / p.b;
        if (blkno != cur) {
          runs_v.read_block(blkno, std::span<T>(blk));
          cur = blkno;
        }
        samples.push_back(blk[pos % p.b]);
      }
    }
    WireWriter wire;
    wire.pod_span<T>(std::span<const T>(samples));
    return wire.take();
  };
  RoundOutcome out = group.round("dist/resample", body);
  std::vector<T> samples;
  for (std::size_t w = 0; w < W; ++w) {
    WireReader rd(out.payloads[w]);
    std::vector<T> part = rd.template pod_vec<T>();
    samples.insert(samples.end(), part.begin(), part.end());
  }
  rows_out = std::move(out.rows);
  return samples;
}

/// Select round: for every (owned run, candidate) pair, the run-local lower
/// bound of the candidate, found by binary search over block first-records
/// plus one boundary-block scan.  Returns the cut matrix in candidate-major
/// order per run: cuts[u * K + i] = cut of candidate i in run u.
template <EmRecord T, typename Less>
std::vector<std::uint64_t> select_round(WorkerGroup& group, const DistPlan& p,
                                        const BlockRange& runs,
                                        const std::vector<T>& cands, Less less,
                                        std::vector<PassWorkerIo>& rows_out) {
  const std::size_t W = group.workers();
  const auto body = [&p, &runs, &cands, less,
                     W](Context& wctx, std::size_t w) -> std::vector<std::byte> {
    const EmVector<T> runs_v =
        EmVector<T>::adopt(wctx, runs, p.n, /*owning=*/false);
    auto res = wctx.budget().reserve(p.b * sizeof(T));
    std::vector<T> blk(p.b);
    std::vector<std::uint64_t> cuts;
    for (std::size_t u = unit_begin(p.n_runs, W, w);
         u < unit_begin(p.n_runs, W, w + 1); ++u) {
      const std::size_t lo = u * p.chunk;
      const std::size_t len = std::min(p.n, lo + p.chunk) - lo;
      const std::size_t first_blk = lo / p.b;
      const std::size_t nblocks = (len + p.b - 1) / p.b;
      std::size_t prev = 0;  // cuts are monotone in the sorted candidates
      for (const T& x : cands) {
        std::size_t lob = prev / p.b;
        std::size_t hib = nblocks;
        while (lob < hib) {
          const std::size_t mid = lob + (hib - lob) / 2;
          runs_v.read_block(first_blk + mid, std::span<T>(blk));
          if (less(blk[0], x)) {
            lob = mid + 1;
          } else {
            hib = mid;
          }
        }
        std::size_t cut = 0;
        if (lob > 0) {
          const std::size_t bi = lob - 1;
          runs_v.read_block(first_blk + bi, std::span<T>(blk));
          const std::size_t in_blk = std::min(p.b, len - bi * p.b);
          const auto blk_end =
              blk.begin() + static_cast<std::ptrdiff_t>(in_blk);
          cut = bi * p.b +
                static_cast<std::size_t>(
                    std::lower_bound(blk.begin(), blk_end, x, less) -
                    blk.begin());
        }
        cut = std::max(cut, prev);
        cuts.push_back(cut);
        prev = cut;
      }
    }
    WireWriter wire;
    wire.pod_span<std::uint64_t>(std::span<const std::uint64_t>(cuts));
    return wire.take();
  };
  RoundOutcome out = group.round("dist/select", body);
  std::vector<std::uint64_t> cuts;
  cuts.reserve(p.n_runs * cands.size());
  for (std::size_t w = 0; w < W; ++w) {
    WireReader rd(out.payloads[w]);
    std::vector<std::uint64_t> part = rd.template pod_vec<std::uint64_t>();
    cuts.insert(cuts.end(), part.begin(), part.end());
  }
  rows_out = std::move(out.rows);
  return cuts;
}

/// One output part as the scatter round sees it.
struct PartDef {
  std::uint64_t lo = 0;      ///< output range [lo, hi)
  std::uint64_t hi = 0;
  bool sort = false;         ///< emit sorted (else concatenate run order)
};

/// Edge records one part sent back for stitching.
template <EmRecord T>
struct PartEdges {
  std::size_t part = 0;
  std::vector<T> head;
  std::vector<T> tail;
};

/// Scatter round: each worker materializes its owned parts into the output
/// extent (interior blocks) and wires back the edge records.  `seg_cuts` is
/// the (P+1) x U matrix of run-local part boundaries: part i's records in
/// run u are run-local [seg_cuts[i * U + u], seg_cuts[(i+1) * U + u]).
template <EmRecord T, typename Less>
std::vector<PartEdges<T>> scatter_round(
    WorkerGroup& group, const DistPlan& p, const BlockRange& runs,
    const BlockRange& out_extent, const std::vector<PartDef>& parts,
    const std::vector<std::uint64_t>& seg_cuts, Less less,
    std::vector<PassWorkerIo>& rows_out) {
  const std::size_t W = group.workers();
  const std::size_t U = p.n_runs;
  const auto body = [&p, &runs, &out_extent, &parts, &seg_cuts, less, W,
                     U](Context& wctx, std::size_t w) -> std::vector<std::byte> {
    const EmVector<T> runs_v =
        EmVector<T>::adopt(wctx, runs, p.n, /*owning=*/false);
    EmVector<T> out_v =
        EmVector<T>::adopt(wctx, out_extent, p.n, /*owning=*/false);
    // One reservation covering the worst path: a limit-sized gather (or the
    // per-run cursor blocks) next to the writer buffer and edge slack.
    auto res = wctx.budget().reserve(
        (std::max(p.limit, (U + 1) * p.b) + p.sbr + 2 * p.b) * sizeof(T));
    std::vector<T> buf;
    WireWriter wire;
    for (std::size_t i = unit_begin(parts.size(), W, w);
         i < unit_begin(parts.size(), W, w + 1); ++i) {
      const PartDef& part = parts[i];
      const std::size_t plen =
          static_cast<std::size_t>(part.hi - part.lo);
      PartWriter<T> pw(out_v, static_cast<std::size_t>(part.lo),
                       static_cast<std::size_t>(part.hi), p.sbr);
      const auto seg_lo = [&](std::size_t u) {
        return static_cast<std::size_t>(seg_cuts[i * U + u]);
      };
      const auto seg_hi = [&](std::size_t u) {
        return static_cast<std::size_t>(seg_cuts[(i + 1) * U + u]);
      };
      if (!part.sort) {
        // Finished partition run: concatenate segments in run order.
        buf.clear();
        for (std::size_t u = 0; u < U; ++u) {
          std::size_t pos = seg_lo(u);
          const std::size_t end = seg_hi(u);
          while (pos < end) {
            const std::size_t take = std::min(p.sbr, end - pos);
            buf.resize(take);
            load_range<T>(runs_v, u * p.chunk + pos, std::span<T>(buf));
            pw.push_span(std::span<const T>(buf));
            pos += take;
          }
        }
      } else if (plen <= p.limit) {
        // Gather every segment, sort the concatenation in memory.
        buf.resize(plen);
        std::size_t off = 0;
        for (std::size_t u = 0; u < U; ++u) {
          const std::size_t len = seg_hi(u) - seg_lo(u);
          if (len == 0) continue;
          load_range<T>(runs_v, u * p.chunk + seg_lo(u),
                        std::span<T>(buf.data() + off, len));
          off += len;
        }
        assert(off == plen);
        std::sort(buf.begin(), buf.end(), less);
        pw.push_span(std::span<const T>(buf));
      } else {
        // Oversized (duplicate-dominated or sampling-starved) part: k-way
        // merge of the segments with one cursor block per run.
        struct Cursor {
          std::size_t pos;   // run-local next record
          std::size_t end;   // run-local segment end
          std::size_t base;  // global record offset of the run
          std::size_t blk = static_cast<std::size_t>(-1);
          std::vector<T> data;
        };
        std::vector<Cursor> cur(U);
        const auto deref = [&](std::size_t u) -> const T& {
          Cursor& c = cur[u];
          const std::size_t g = c.base + c.pos;
          const std::size_t blkno = g / p.b;
          if (blkno != c.blk) {
            if (c.data.empty()) c.data.resize(p.b);
            runs_v.read_block(blkno, std::span<T>(c.data));
            c.blk = blkno;
          }
          return c.data[g % p.b];
        };
        // Min-heap keyed by (record, run index): deterministic tie-break.
        const auto heap_less = [&](std::size_t a, std::size_t bidx) {
          const T& ra = deref(a);
          const T& rb = deref(bidx);
          if (less(ra, rb)) return false;  // priority_queue is a max-heap
          if (less(rb, ra)) return true;
          return a > bidx;
        };
        std::priority_queue<std::size_t, std::vector<std::size_t>,
                            decltype(heap_less)>
            heap(heap_less);
        for (std::size_t u = 0; u < U; ++u) {
          cur[u].pos = seg_lo(u);
          cur[u].end = seg_hi(u);
          cur[u].base = u * p.chunk;
          if (cur[u].pos < cur[u].end) heap.push(u);
        }
        while (!heap.empty()) {
          const std::size_t u = heap.top();
          heap.pop();
          pw.push(deref(u));
          if (++cur[u].pos < cur[u].end) heap.push(u);
        }
      }
      pw.finish();
      wire.u64(i);
      wire.pod_span<T>(std::span<const T>(pw.head()));
      wire.pod_span<T>(std::span<const T>(pw.tail()));
    }
    return wire.take();
  };
  RoundOutcome out = group.round("dist/scatter", body);
  std::vector<PartEdges<T>> edges;
  for (std::size_t w = 0; w < W; ++w) {
    WireReader rd(out.payloads[w]);
    while (!rd.done()) {
      PartEdges<T> e;
      e.part = static_cast<std::size_t>(rd.u64());
      e.head = rd.template pod_vec<T>();
      e.tail = rd.template pod_vec<T>();
      edges.push_back(std::move(e));
    }
  }
  rows_out = std::move(out.rows);
  return edges;
}

}  // namespace emsplit::dist

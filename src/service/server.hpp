// server.hpp — the resident splitter service.
//
// SplitterServer keeps one SplitterIndex<Record> epoch resident and serves
// rank / range / histogram / top-k queries from N concurrent client threads,
// through two front ends:
//
//   * the in-process API (query()): used by the tests, the examples and the
//     bench harness — a Request in, a Reply out, thread-safe.
//   * a line-protocol Unix-domain socket (serve_unix()): one serving thread
//     per connection, the `emsplit query` client on the other end.
//
// Admission control: every request is costed with the index's
// footprint_bytes() estimate and charged against the context's MemoryBudget
// via try_reserve().  An over-budget request queues (polling) for up to
// Config::queue_wait seconds, then sheds with a structured reject.  The
// admission ticket is released before the engine runs — the engine reserves
// its actual working set itself — so admission is two-phase and approximate:
// a query that slips past admission into a budget collision simply sheds at
// its own reserve() instead (caught, never fatal).
//
// Epoch refresh: refresh() rebuilds the index from the source file and
// publishes the result atomically.  With a checkpoint journal attached the
// publish is crash-consistent:
//
//   1. the new epoch's extent + geometry go into the journal
//      (publish_sort_pass under an epoch-numbered fingerprint),
//   2. the CURRENT file (state_dir/SERVICE_CURRENT) is bumped by
//      write-to-temp + atomic rename,
//   3. the snapshot pointer is swapped; queries in flight keep the old
//      epoch alive until they drain, then its blocks are retired.
//
// A crash between (1) and (2) — the injection point the kill tests use —
// leaves the journal holding an orphaned next epoch: restart serves the
// CURRENT epoch and reclaims the orphan's blocks.  Queries never block on a
// refresh; they read whichever epoch is published when they snapshot.
//
// Threading: query() is safe from any thread.  start()/refresh() serialize
// on an internal mutex and are the only paths that touch the device
// allocator, preserving the substrate's single-allocator-thread rule.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "em/context.hpp"
#include "service/splitter_index.hpp"
#include "util/record.hpp"

namespace emsplit {

class SplitterServer {
 public:
  struct Config {
    std::string source_path;    ///< record file each (re)build reads
    std::uint64_t buckets = 64; ///< index buckets K
    double slack = 0.25;        ///< equi-depth slack for the build
    double queue_wait = 0.05;   ///< seconds an over-budget query may queue
    std::string state_dir;      ///< CURRENT-file home ("" = ephemeral)
  };

  struct Request {
    QueryKind kind = QueryKind::kRank;
    Record lo{};                ///< rank probe / range lower bound
    Record hi{};                ///< range upper bound
    std::uint64_t k = 0;        ///< histogram buckets / top-k k
    bool largest = true;        ///< top-k direction
  };

  struct Reply {
    bool ok = false;
    std::string admission;      ///< "admit" | "queued" | "shed" | "error"
    std::string error;          ///< reject reason / error text
    std::uint64_t value = 0;    ///< rank / range count
    EquiDepthHistogram<Record> hist;
    std::vector<Record> records;  ///< top-k records, ascending
    IoStats io;                 ///< the query's own I/O
    double seconds = 0;         ///< total latency, queueing included
    double queue_seconds = 0;   ///< admission wait
    std::uint64_t epoch = 0;    ///< epoch that served (or rejected) it
  };

  SplitterServer(Context& ctx, Config cfg);
  ~SplitterServer();

  SplitterServer(const SplitterServer&) = delete;
  SplitterServer& operator=(const SplitterServer&) = delete;

  /// Bring the service up: recover the last published epoch from the
  /// checkpoint journal if one is attached and holds state, otherwise build
  /// epoch 1 from the source file and publish it.
  void start();

  /// True when start() served the journal's epoch instead of rebuilding —
  /// what the restart smoke asserts after a mid-refresh kill.
  [[nodiscard]] bool recovered() const noexcept { return recovered_; }

  [[nodiscard]] std::uint64_t epoch() const;
  [[nodiscard]] std::uint64_t size() const;
  [[nodiscard]] std::uint64_t served() const noexcept { return served_; }
  [[nodiscard]] std::uint64_t shed() const noexcept { return shed_; }

  /// Answer one request (thread-safe).  `client` tags the trace row.
  Reply query(const Request& req, std::uint64_t client = 0);

  /// Rebuild from the source file and publish the next epoch; returns it.
  std::uint64_t refresh();

  /// Accept-and-serve loop on a Unix-domain socket (blocks until stop()).
  void serve_unix(const std::string& socket_path);

  /// Ask serve_unix() to wind down; safe from any thread / signal context.
  void stop() noexcept { stop_.store(true); }

  [[nodiscard]] QueryTraceLog& trace() noexcept { return trace_; }

 private:
  using Index = SplitterIndex<Record>;

  [[nodiscard]] std::shared_ptr<const Index> snapshot(
      std::uint64_t& epoch_out) const;
  [[nodiscard]] std::uint64_t epoch_fingerprint(std::uint64_t epoch) const;
  [[nodiscard]] bool persistent() const;
  [[nodiscard]] Index build_epoch();
  void publish(Index idx);
  [[nodiscard]] bool recover();
  void write_current(std::uint64_t epoch) const;
  [[nodiscard]] std::string current_path() const;
  void serve_conn(int fd, std::uint64_t client);
  [[nodiscard]] std::string handle_line(const std::string& line,
                                        std::uint64_t client, bool& close_conn);

  Context* ctx_;
  Config cfg_;
  QueryTraceLog trace_;

  mutable std::mutex mu_;  ///< guards current_ / epoch_
  std::shared_ptr<const Index> current_;
  std::uint64_t epoch_ = 0;

  std::mutex refresh_mu_;  ///< serializes start/refresh (allocator work)
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> shed_{0};
  bool recovered_ = false;
};

}  // namespace emsplit

// server.hpp — the resident splitter service.
//
// SplitterServer keeps one SplitterIndex<Record> epoch resident and serves
// rank / range / histogram / top-k queries from N concurrent client threads,
// through three front ends:
//
//   * the in-process API (query() / query_batch()): used by the tests, the
//     examples and the bench harness — Requests in, Replies out, thread-safe.
//     query_batch() pins ONE snapshot for the whole batch (the pipelined
//     connection's execution primitive).
//   * a line-protocol Unix-domain socket (serve_unix()), one serving thread
//     per connection, the `emsplit query` client on the other end.
//   * the same line protocol over TCP (serve_tcp(), `--listen=host:port`) —
//     identical parsing, admission, tracing and answers; only the transport
//     differs.
//
// Connections are *pipelined*: a client may write any number of request
// lines without waiting; the serving thread parses every complete line per
// read, executes consecutive query lines against one pinned snapshot, and
// writes the batch's responses back in request order with a single vectored
// write.  Control lines (STATS / EPOCH / REFRESH / SHUTDOWN) release the pin
// first — a connection can never deadlock its own REFRESH against the
// snapshot it pinned.  A line that exceeds kMaxLineBytes without a newline
// closes the connection with an error.
//
// Admission control: every request is costed with the index's
// footprint_bytes() estimate and charged against the context's MemoryBudget
// via try_reserve().  An over-budget request queues on a condition variable
// for up to Config::queue_wait seconds — woken by the budget's release
// listener the moment bytes free up, not by polling — then sheds with a
// structured reject.  The admission ticket is released before the engine
// runs — the engine reserves its actual working set itself — so admission is
// two-phase and approximate: a query that slips past admission into a budget
// collision simply sheds at its own reserve() instead (caught, never fatal).
//
// Epoch refresh: refresh() rebuilds the index from the source file and
// publishes the result atomically.  With a checkpoint journal attached the
// publish is crash-consistent:
//
//   1. the new epoch's extent + geometry go into the journal
//      (publish_sort_pass under an epoch-numbered fingerprint),
//   2. the CURRENT file (state_dir/SERVICE_CURRENT) is bumped by
//      write-to-temp + atomic rename,
//   3. the snapshot pointer is swapped and the superseded epoch's
//      BucketScanCache is retired atomically (no query can hit a stale
//      epoch's payloads); queries in flight keep the old epoch alive until
//      they drain — the publisher waits on a condition variable signalled by
//      the snapshot's drain (never sleep-polling; retire_waits() counts the
//      times it actually had to wait) — then its blocks are retired.
//
// A crash between (1) and (2) — the injection point the kill tests use —
// leaves the journal holding an orphaned next epoch: restart serves the
// CURRENT epoch and reclaims the orphan's blocks.  Queries never block on a
// refresh; they read whichever epoch is published when they snapshot.
//
// Bucket-scan caching: with Config::bucket_cache_blocks > 0 each published
// epoch gets its own BucketScanCache (decoded bucket payloads, single-flight
// scan sharing — see splitter_index.hpp).  The server forwards a MemoryBudget
// reclaimer to the *current* epoch's cache, so refresh builds push the cache
// out before any reservation is refused.  Geometry, never output: identical
// answers and identical per-query base IoStats with the cache on or off.
//
// Threading: query()/query_batch() are safe from any thread.
// start()/refresh() serialize on an internal mutex and (with the post-drain
// teardown of the superseded index) are the only paths that touch the device
// allocator, preserving the substrate's single-allocator-thread rule.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "em/context.hpp"
#include "service/splitter_index.hpp"
#include "util/record.hpp"

namespace emsplit {

class SplitterServer {
 public:
  /// Longest request line the socket front ends will buffer while waiting
  /// for a newline; beyond it the connection is closed with an error.
  static constexpr std::size_t kMaxLineBytes = 1 << 16;

  struct Config {
    std::string source_path;    ///< record file each (re)build reads
    std::uint64_t buckets = 64; ///< index buckets K
    double slack = 0.25;        ///< equi-depth slack for the build
    double queue_wait = 0.05;   ///< seconds an over-budget query may queue
    std::string state_dir;      ///< CURRENT-file home ("" = ephemeral)
    /// Per-epoch BucketScanCache capacity in blocks (0 = no bucket cache).
    std::uint64_t bucket_cache_blocks = 0;
  };

  struct Request {
    QueryKind kind = QueryKind::kRank;
    Record lo{};                ///< rank probe / range lower bound
    Record hi{};                ///< range upper bound
    std::uint64_t k = 0;        ///< histogram buckets / top-k k
    bool largest = true;        ///< top-k direction
  };

  struct Reply {
    bool ok = false;
    std::string admission;      ///< "admit" | "queued" | "shed" | "error"
    std::string error;          ///< reject reason / error text
    std::uint64_t value = 0;    ///< rank / range count
    EquiDepthHistogram<Record> hist;
    std::vector<Record> records;  ///< top-k records, ascending
    IoStats io;                 ///< the query's own I/O
    double seconds = 0;         ///< total latency, queueing included
    double queue_seconds = 0;   ///< admission wait
    std::uint64_t epoch = 0;    ///< epoch that served (or rejected) it
    /// Epoch of the BucketScanCache that served this query's bucket_hits
    /// (0 when none were served from the cache).  Always equals `epoch` —
    /// the cache is keyed to the pinned snapshot — and the kill-mid-refresh
    /// sweep asserts exactly that, per query.
    std::uint64_t cache_epoch = 0;
  };

  SplitterServer(Context& ctx, Config cfg);
  ~SplitterServer();

  SplitterServer(const SplitterServer&) = delete;
  SplitterServer& operator=(const SplitterServer&) = delete;

  /// Bring the service up: recover the last published epoch from the
  /// checkpoint journal if one is attached and holds state, otherwise build
  /// epoch 1 from the source file and publish it.
  void start();

  /// True when start() served the journal's epoch instead of rebuilding —
  /// what the restart smoke asserts after a mid-refresh kill.
  [[nodiscard]] bool recovered() const noexcept { return recovered_; }

  [[nodiscard]] std::uint64_t epoch() const;
  [[nodiscard]] std::uint64_t size() const;
  [[nodiscard]] std::uint64_t served() const noexcept { return served_; }
  [[nodiscard]] std::uint64_t shed() const noexcept { return shed_; }

  /// Times an epoch publish actually had to wait for in-flight queries to
  /// drain (condvar waits, not sleeps).  Zero under zero load — the
  /// refresh-without-sleeping test's assertion.
  [[nodiscard]] std::uint64_t retire_waits() const noexcept {
    return retire_waits_.load(std::memory_order_relaxed);
  }

  /// Answer one request (thread-safe).  `client` tags the trace row.
  Reply query(const Request& req, std::uint64_t client = 0);

  /// Answer a batch of requests against ONE pinned snapshot, serially, in
  /// order — the pipelined connection's execution primitive (thread-safe).
  /// Every reply carries the same epoch.
  std::vector<Reply> query_batch(const std::vector<Request>& reqs,
                                 std::uint64_t client = 0);

  /// Rebuild from the source file and publish the next epoch; returns it.
  std::uint64_t refresh();

  /// Accept-and-serve loop on a Unix-domain socket (blocks until stop()).
  void serve_unix(const std::string& socket_path);

  /// Accept-and-serve loop on a TCP socket (blocks until stop()).  Pass
  /// port 0 to bind an ephemeral port; tcp_port() reports the bound port
  /// once listening.  Same protocol, admission and trace path as the Unix
  /// socket.  Runs beside serve_unix() from a second thread.
  void serve_tcp(const std::string& host, std::uint16_t port);

  /// The TCP listener's bound port (0 until serve_tcp() is listening).
  [[nodiscard]] std::uint16_t tcp_port() const noexcept {
    return tcp_port_.load(std::memory_order_acquire);
  }

  /// Ask the serve loops to wind down; safe from any thread / signal
  /// context (atomic store only — the loops poll it at 100ms granularity).
  void stop() noexcept { stop_.store(true); }

  [[nodiscard]] QueryTraceLog& trace() noexcept { return trace_; }

  /// The current epoch's bucket-scan cache (null when caching is off or no
  /// epoch is published) — tests and STATS reporting.
  [[nodiscard]] std::shared_ptr<BucketScanCache<Record>> bucket_cache() const;

 private:
  using Index = SplitterIndex<Record>;
  enum class ParseKind { kQuery, kOther, kBad };

  [[nodiscard]] std::shared_ptr<const Index> snapshot(
      std::uint64_t& epoch_out) const;
  [[nodiscard]] std::uint64_t epoch_fingerprint(std::uint64_t epoch) const;
  [[nodiscard]] bool persistent() const;
  [[nodiscard]] Index build_epoch();
  void publish(Index idx);
  [[nodiscard]] bool recover();
  /// Wrap a built index in the snapshot shared_ptr (owner_ keeps ownership;
  /// the shared deleter only signals drain) and attach a fresh bucket cache
  /// for `epoch`; caller swaps under mu_.
  void adopt_epoch(std::unique_ptr<Index> built, std::uint64_t epoch,
                   std::shared_ptr<const Index>& out_snapshot,
                   std::unique_ptr<Index>& out_owner,
                   std::shared_ptr<BucketScanCache<Record>>& out_cache);
  void write_current(std::uint64_t epoch) const;
  [[nodiscard]] std::string current_path() const;
  /// One request answered against the given pinned snapshot: admission
  /// (condvar-queued), engine, trace.
  Reply query_on(const std::shared_ptr<const Index>& idx, std::uint64_t epoch,
                 const Request& req, std::uint64_t client);
  void accept_loop(int lfd, bool tcp);
  void serve_conn(int fd, std::uint64_t client);
  /// Classify a line: query (req filled), control/unknown, or malformed
  /// query (err filled).
  [[nodiscard]] ParseKind parse_query(const std::string& line, Request& req,
                                      std::string& err) const;
  [[nodiscard]] std::string format_reply(const Request& req,
                                         const Reply& rep) const;
  /// Trace + format a malformed line's error response.
  [[nodiscard]] std::string bad_line(const std::string& line,
                                     std::uint64_t client,
                                     const std::string& why);
  [[nodiscard]] std::string handle_line(const std::string& line,
                                        std::uint64_t client, bool& close_conn);
  /// Execute a pipelined batch of lines: consecutive queries share one
  /// pinned snapshot, control lines drop the pin first; responses in order.
  [[nodiscard]] std::vector<std::string> handle_batch(
      const std::vector<std::string>& lines, std::uint64_t client,
      bool& close_conn);

  Context* ctx_;
  Config cfg_;
  QueryTraceLog trace_;

  // Epoch retirement: publish() waits here for the superseded snapshot's
  // drain; the snapshot deleter signals.  Declared before the snapshot
  // members so they are destroyed first (their deleter touches these).
  std::mutex retire_mu_;
  std::condition_variable retire_cv_;
  std::atomic<std::uint64_t> retire_waits_{0};

  // Admission queue: over-budget queries wait here; the budget's release
  // listener bumps admit_gen_ and notifies.  Waiters never call into the
  // budget while holding admit_mu_ (lock-order discipline vs. reclaimers).
  std::mutex admit_mu_;
  std::condition_variable admit_cv_;
  std::atomic<std::uint64_t> admit_gen_{0};
  std::atomic<std::uint64_t> admit_waiters_{0};

  mutable std::mutex mu_;  ///< guards owner_ / current_ / bucket_cache_ / epoch_
  std::unique_ptr<Index> owner_;  ///< owns the published index (teardown on the publish thread)
  std::shared_ptr<const Index> current_;
  std::shared_ptr<BucketScanCache<Record>> bucket_cache_;
  std::uint64_t epoch_ = 0;

  std::mutex refresh_mu_;  ///< serializes start/refresh (allocator work)
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> next_client_{0};
  std::atomic<std::uint16_t> tcp_port_{0};
  std::uint64_t cache_reclaimer_id_ = 0;
  bool recovered_ = false;
};

}  // namespace emsplit

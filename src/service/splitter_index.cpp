// splitter_index.cpp — QueryTrace: the service request log.
//
// The index itself is a header template; what lives here is the non-template
// request log — QueryTraceLog (thread-safe: queries complete on N serving
// threads) and the JSON-lines emitters, mirroring pass_engine.cpp's row
// format so one trace file carries both pass rows and query rows.

#include "service/splitter_index.hpp"

#include <cstdio>

namespace emsplit {

void QueryTraceLog::record(QueryTrace trace) {
  const std::lock_guard<std::mutex> lock(mu_);
  rows_.push_back(std::move(trace));
}

std::vector<QueryTrace> QueryTraceLog::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return rows_;
}

void QueryTraceLog::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  rows_.clear();
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

}  // namespace

std::string query_trace_json(const QueryTrace& t) {
  std::string s = "{\"query\":\"";
  append_escaped(s, t.kind);
  s += "\",\"client\":" + std::to_string(t.client);
  s += ",\"epoch\":" + std::to_string(t.epoch);
  s += ",\"admission\":\"";
  append_escaped(s, t.admission);
  s += "\",\"ok\":";
  s += t.ok ? "true" : "false";
  s += ",\"queue_seconds\":";
  append_double(s, t.queue_seconds);
  s += ",\"seconds\":";
  append_double(s, t.seconds);
  s += ",\"reads\":" + std::to_string(t.io.reads);
  s += ",\"cache_hits\":" + std::to_string(t.io.cache_hits);
  s += ",\"cache_misses\":" + std::to_string(t.io.cache_misses);
  s += ",\"bucket_hits\":" + std::to_string(t.io.bucket_hits);
  s += ",\"k\":" + std::to_string(t.k);
  s += ",\"value\":" + std::to_string(t.value);
  s += ",\"detail\":\"";
  append_escaped(s, t.detail);
  s += "\"}";
  return s;
}

bool append_query_trace_jsonl(const QueryTraceLog& log,
                              const std::string& path) {
  const std::vector<QueryTrace> rows = log.snapshot();
  if (rows.empty()) return true;
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return false;
  bool ok = true;
  for (const QueryTrace& t : rows) {
    const std::string line = query_trace_json(t) + "\n";
    if (std::fwrite(line.data(), 1, line.size(), f) != line.size()) {
      ok = false;
      break;
    }
  }
  if (std::fclose(f) != 0) ok = false;
  return ok;
}

}  // namespace emsplit

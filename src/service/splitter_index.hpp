// splitter_index.hpp — the resident query engine over a splitter partition.
//
// The batch apps (range_count, histogram, top_k, load_balance) each rebuilt
// their query machinery per invocation: one CLI job, one scan, exit.  The
// paper's point — approximate splitters are *cheaper to build than a sort* —
// only pays off when the partition they produce is then *queried*, so this
// module turns one approx_partitioning result into a long-lived index:
//
//   * build(): one approximate equi-depth partitioning (K buckets, sizes in
//     [(1-slack), (1+slack)] N/K) plus one N/B scan recording each bucket's
//     maximum.  The buckets are order-contiguous, so the maxima form a
//     memory-resident routing table over the external data.
//   * rank(x): binary-search the maxima for the one bucket that can contain
//     x's rank boundary, then scan just that bucket — O(lg K) compares plus
//     O((N/K)/B + 1) I/Os, *exact* (strict total order: every bucket before
//     the straddled one lies entirely <= x, every bucket after entirely > x).
//   * range_count(a, b]: two ranks.
//   * histogram(k <= K): regroup the index buckets — exact sizes, zero I/O.
//   * top_k(k): whole tail (or head) buckets plus an nth_element over the
//     single straddled bucket — O(k/B + (N/K)/B) I/Os.
//
// Per-query I/O accounting: queries run concurrently from many client
// threads, so a query cannot diff the device's shared counters.  Instead
// each query counts the block reads it issues (deterministic — the set of
// blocks a query touches is a function of the index geometry, never of
// concurrent load) and attributes cache hits exactly via the device's
// thread-confined hit counter (BlockDevice::take_thread_cache_hits).  The
// sum of per-query base I/O over any schedule equals the serial run's — the
// service-layer analogue of "geometry, never output".
//
// Thread-safety: every query method is const and touches only immutable
// index state plus the device's internally synchronized transfer path (and
// the internally synchronized BucketScanCache when one is attached).  N
// threads may query one index concurrently; build/adopt/attach_bucket_cache
// are main-thread.
//
// BucketScanCache (below) is the query hot path's second cache level: decoded
// bucket payloads keyed to one index epoch, single-flight loaded, retired
// atomically when the next epoch publishes.  Hits are charged as the same
// geometric reads a device scan would cost (IoStats::bucket_hits attribution),
// so the cache is geometry, never output.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/partitioning.hpp"
#include "core/spec.hpp"
#include "em/block_device.hpp"
#include "em/context.hpp"
#include "em/em_vector.hpp"
#include "em/io_stats.hpp"
#include "em/stream.hpp"

namespace emsplit {

/// The equi-depth ApproxSpec shared by the histogram app, the load balancer
/// and the index build: K parts, each within [(1-slack), (1+slack)] of N/K,
/// clamped so the spec is always feasible (a <= floor(N/K), b >= ceil(N/K)).
/// Kept bit-for-bit identical to the expressions the apps inlined before the
/// service refactor — their outputs are golden.
inline ApproxSpec equi_depth_spec(std::uint64_t n, std::uint64_t parts,
                                  double slack) {
  const double target = static_cast<double>(n) / static_cast<double>(parts);
  ApproxSpec spec{
      .k = parts,
      .a = slack >= 1.0 ? 0
                        : static_cast<std::uint64_t>((1.0 - slack) * target),
      .b = static_cast<std::uint64_t>((1.0 + slack) * target) + 1};
  spec.a = std::min<std::uint64_t>(spec.a, n / parts);
  spec.b = std::max<std::uint64_t>(spec.b, (n + parts - 1) / parts);
  return spec;
}

/// Exact ranks of arbitrary probe values — #{e in S : e <= probe_j} for all
/// probes — via one counted scan: the batch-side rank engine
/// (apps/range_count.hpp forwards here).  O(N/B + probes) I/Os for up to
/// Θ(M) probes.
template <EmRecord T, typename Less = std::less<T>>
[[nodiscard]] std::vector<std::uint64_t> scan_ranks(Context& ctx,
                                                    const EmVector<T>& data,
                                                    std::vector<T> probes,
                                                    Less less = {}) {
  const std::size_t q = probes.size();
  if (q == 0) return {};
  // Sort probes, remember the inverse permutation.
  std::vector<std::size_t> order(q);
  for (std::size_t i = 0; i < q; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return less(probes[x], probes[y]);
  });
  std::vector<T> sorted_probes(q);
  for (std::size_t i = 0; i < q; ++i) sorted_probes[i] = probes[order[i]];

  // One scan, counting below each probe via binary search per record.
  auto res = ctx.budget().reserve(q * (sizeof(T) + 8));
  std::vector<std::uint64_t> counts(q, 0);
  {
    StreamReader<T> reader(data);
    while (!reader.done()) {
      const T e = reader.next();
      // e contributes to every probe >= e: find the first such probe.
      const auto it = std::lower_bound(
          sorted_probes.begin(), sorted_probes.end(), e,
          [&](const T& p, const T& x) { return less(p, x); });
      const auto j = static_cast<std::size_t>(it - sorted_probes.begin());
      if (j < q) ++counts[j];
    }
  }
  // Prefix-sum: counts[j] currently holds #{e : probe_{j-1} < e <= probe_j}.
  for (std::size_t j = 1; j < q; ++j) counts[j] += counts[j - 1];

  std::vector<std::uint64_t> out(q);
  for (std::size_t i = 0; i < q; ++i) out[order[i]] = counts[i];
  return out;
}

/// One filtered copy: the records of `input` satisfying `keep`, expected to
/// number exactly `k` — the batch-side threshold filter (apps/top_k.hpp
/// forwards here).  `what` labels the count-mismatch diagnostic.
template <EmRecord T, typename Keep>
[[nodiscard]] EmVector<T> filter_exactly(Context& ctx, const EmVector<T>& input,
                                         std::uint64_t k, Keep keep,
                                         const char* what) {
  EmVector<T> out(ctx, static_cast<std::size_t>(k));
  StreamReader<T> reader(input);
  StreamWriter<T> writer(out);
  while (!reader.done()) {
    const T e = reader.next();
    if (keep(e)) writer.push(e);
  }
  writer.finish();
  if (out.size() != k) {
    throw std::logic_error(std::string(what) +
                           ": filter count mismatch (duplicate records? the "
                           "library requires a strict total order)");
  }
  return out;
}

/// A nearly equi-depth histogram: K buckets, bucket i covering
/// (boundary[i-1], boundary[i]] with counted size sizes[i].  (Moved here
/// from apps/histogram.hpp, which re-exports it: the histogram is now also a
/// service query result.)
template <EmRecord T>
struct EquiDepthHistogram {
  std::vector<T> boundaries;           ///< K-1 bucket boundaries (ascending)
  std::vector<std::uint64_t> sizes;    ///< K exact bucket sizes
  std::uint64_t total = 0;             ///< N

  [[nodiscard]] std::size_t buckets() const { return sizes.size(); }

  /// Estimated rank of `x` (midpoint of its bucket's rank range): the
  /// standard equi-depth estimator, error at most half the bucket size.
  template <typename Less = std::less<T>>
  [[nodiscard]] std::uint64_t estimate_rank(const T& x, Less less = {}) const {
    const auto it = std::lower_bound(
        boundaries.begin(), boundaries.end(), x,
        [&](const T& s, const T& v) { return less(s, v); });
    const auto j = static_cast<std::size_t>(it - boundaries.begin());
    std::uint64_t before = 0;
    for (std::size_t i = 0; i < j; ++i) before += sizes[i];
    return before + sizes[j] / 2;
  }

  /// Estimated number of elements in (lo, hi].
  template <typename Less = std::less<T>>
  [[nodiscard]] std::uint64_t estimate_range(const T& lo, const T& hi,
                                             Less less = {}) const {
    const auto rl = estimate_rank(lo, less);
    const auto rh = estimate_rank(hi, less);
    return rh >= rl ? rh - rl : 0;
  }
};

/// The query kinds the service understands — shared by the admission
/// controller, the wire protocol and the trace rows.
enum class QueryKind : std::uint8_t { kRank, kRange, kHistogram, kTopK };

[[nodiscard]] constexpr const char* query_kind_name(QueryKind k) noexcept {
  switch (k) {
    case QueryKind::kRank: return "rank";
    case QueryKind::kRange: return "range";
    case QueryKind::kHistogram: return "histogram";
    case QueryKind::kTopK: return "topk";
  }
  return "?";
}

/// A query's answer plus the I/O it performed: `io.reads` block reads were
/// issued by this query (cache_hits of them served from the cache), nothing
/// else moved.  base() sums over any concurrent schedule equal the serial
/// run's — the determinism contract tests assert.
template <typename V>
struct QueryResult {
  V value{};
  IoStats io;
};

/// One served (or rejected) request, as the service records it — the query
/// analogue of PassTrace.  Emitted as a JSON-lines row on the same trace
/// sink the pass engine uses; rows are distinguished by their leading
/// "query" key (pass rows lead with "job"), which is what lets
/// tools/trace_view.py render mixed traces.
struct QueryTrace {
  std::string kind;          ///< query_kind_name(), or "?" for a parse error
  std::uint64_t client = 0;  ///< serving thread / connection id
  std::uint64_t epoch = 0;   ///< index epoch that served the query
  std::string admission;     ///< "admit" | "queued" | "shed" | "error"
  bool ok = false;           ///< answered (false: shed or failed)
  double queue_seconds = 0;  ///< time spent waiting for admission
  double seconds = 0;        ///< total latency, queueing included
  IoStats io;                ///< the query's own I/O (engine-attributed)
  std::uint64_t k = 0;       ///< query parameter (histogram/top-k k)
  std::uint64_t value = 0;   ///< scalar answer (rank/range count), else 0
  std::string detail;        ///< reject reason / error text, else empty
};

/// Thread-safe sink for QueryTrace rows: unlike PassTraceLog (main-thread
/// only), queries complete on N serving threads concurrently.
class QueryTraceLog {
 public:
  void record(QueryTrace trace);
  [[nodiscard]] std::vector<QueryTrace> snapshot() const;
  void reset();

 private:
  mutable std::mutex mu_;
  std::vector<QueryTrace> rows_;
};

/// One QueryTrace as a JSON object (one line, no trailing newline).
[[nodiscard]] std::string query_trace_json(const QueryTrace& t);

/// Append the log's rows to `path` as JSON-lines (append, not truncate: the
/// pass engine's rows for the build/refresh passes come first in the same
/// file).  Returns false on any write failure.
bool append_query_trace_jsonl(const QueryTraceLog& log,
                              const std::string& path);

/// BucketScanCache — epoch-keyed decoded-bucket payload cache for the query
/// hot path (docs/model.md, "The query hot path").
///
/// One instance serves exactly one published index epoch: the server creates
/// it at publish time, attaches it to that epoch's SplitterIndex, and calls
/// retire() the moment the *next* epoch publishes — so a payload can never
/// outlive the epoch whose bytes it decodes, and a query that pinned epoch E
/// only ever sees E's cache (the kill-mid-refresh sweep asserts cache-hit
/// epoch == reply epoch per query).
///
/// Like BlockCache, the cache is invisible to the cost model: a hit is still
/// charged as the bucket's geometric block reads (IoStats::reads), attributed
/// separately as IoStats::bucket_hits, so per-query base I/O with the cache
/// on is bit-identical to the uncached run.  Memory is chunk-reserved from
/// the MemoryBudget (try_reserve, never reclaiming from peers) and shed back
/// through shed() — the server registers a budget reclaimer that forwards to
/// the current epoch's cache, so algorithm reservations (a refresh build)
/// push the cache out before they are refused.
///
/// Scan sharing: lookup() is single-flight.  The first thread to miss a
/// bucket becomes its *loader* (scans the device, publishes the payload);
/// concurrent queries straddling the same bucket wait on the condvar and are
/// served the loader's payload as a coalesced hit — one device scan, N
/// answers, every query still charged its own geometric reads.
///
/// All methods are thread-safe (one internal mutex).  Payloads are handed
/// out as shared_ptr so retirement/eviction never invalidates a scan in
/// flight.
template <EmRecord T>
class BucketScanCache {
 public:
  /// What lookup() resolved to.  Exactly one of three shapes: `payload` set
  /// (hit — `coalesced` when a concurrent loader produced it while we
  /// waited), `loader` true (caller must scan the device and then publish()
  /// or abort_load()), or neither (cache disabled/retired: plain device
  /// scan, no cache interaction).
  struct Lookup {
    std::shared_ptr<const std::vector<T>> payload;
    bool loader = false;
    bool coalesced = false;
  };

  /// A cache of up to `capacity_bytes` of decoded payloads for `epoch`,
  /// charged against `budget` in `chunk_bytes` reservations.  If the budget
  /// cannot spare even one chunk now, the cache disables itself permanently
  /// (queries then scan the device, answers unchanged).
  BucketScanCache(MemoryBudget& budget, std::size_t capacity_bytes,
                  std::size_t chunk_bytes, std::uint64_t epoch)
      : budget_(budget),
        capacity_bytes_(capacity_bytes),
        chunk_bytes_(std::max<std::size_t>(
            1, std::min(chunk_bytes, std::max<std::size_t>(1, capacity_bytes)))),
        epoch_(epoch) {
    if (capacity_bytes_ == 0) return;
    auto probe = budget_.try_reserve(chunk_bytes_, /*allow_reclaim=*/false);
    if (!probe) return;
    chunks_.push_back(std::move(*probe));
    enabled_.store(true, std::memory_order_release);
  }

  BucketScanCache(const BucketScanCache&) = delete;
  BucketScanCache& operator=(const BucketScanCache&) = delete;

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_acquire);
  }
  /// The index epoch this cache serves — fixed for life; hits can only ever
  /// carry this epoch.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// Single-flight bucket lookup (see Lookup).  May block while another
  /// thread loads the same bucket.
  [[nodiscard]] Lookup lookup(std::size_t bucket) {
    std::unique_lock<std::mutex> lk(mu_);
    bool waited = false;
    for (;;) {
      if (!enabled_.load(std::memory_order_relaxed)) return {};
      const auto it = map_.find(bucket);
      if (it != map_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        hits_.fetch_add(1, std::memory_order_relaxed);
        if (waited) coalesced_.fetch_add(1, std::memory_order_relaxed);
        return {it->second->payload, /*loader=*/false, /*coalesced=*/waited};
      }
      if (loading_.insert(bucket).second) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return {nullptr, /*loader=*/true, /*coalesced=*/false};
      }
      waited = true;
      cv_.wait(lk);
    }
  }

  /// Loader hand-off: insert the decoded payload (evicting LRU entries /
  /// growing by chunks as the budget allows — on no room the payload is
  /// simply dropped) and wake the bucket's waiters.
  void publish(std::size_t bucket, std::shared_ptr<const std::vector<T>> payload) {
    {
      const std::lock_guard<std::mutex> lk(mu_);
      loading_.erase(bucket);
      const std::size_t bytes = payload->size() * sizeof(T);
      if (enabled_.load(std::memory_order_relaxed) && bytes > 0 &&
          bytes <= capacity_bytes_ && make_room_locked(bytes)) {
        lru_.push_front(Entry{bucket, bytes, std::move(payload)});
        map_[bucket] = lru_.begin();
        used_bytes_ += bytes;
      }
    }
    cv_.notify_all();
  }

  /// Loader backed out (budget declined the payload buffer, or the scan
  /// threw): drop the marker so a waiter can take over.  Idempotent.
  void abort_load(std::size_t bucket) {
    {
      const std::lock_guard<std::mutex> lk(mu_);
      loading_.erase(bucket);
    }
    cv_.notify_all();
  }

  /// Retire the whole cache atomically: the epoch was superseded.  Drops
  /// every entry and marker, returns every budget chunk, disables the cache
  /// permanently and wakes all waiters (they fall back to the device —
  /// queries still in flight on the old epoch stay correct, just uncached).
  void retire() {
    {
      const std::lock_guard<std::mutex> lk(mu_);
      enabled_.store(false, std::memory_order_release);
      map_.clear();
      lru_.clear();
      loading_.clear();
      used_bytes_ = 0;
      chunks_.clear();
    }
    cv_.notify_all();
  }

  /// MemoryBudget reclaimer entry (forwarded by the server): evict LRU
  /// entries until whole chunks idle, return them, report bytes released.
  std::size_t shed(std::size_t bytes_needed) {
    const std::lock_guard<std::mutex> lk(mu_);
    std::size_t freed = 0;
    while (freed < bytes_needed && !chunks_.empty()) {
      while (used_bytes_ + chunk_bytes_ > granted_bytes() &&
             evict_tail_locked()) {
      }
      if (used_bytes_ + chunk_bytes_ > granted_bytes()) break;
      chunks_.pop_back();
      freed += chunk_bytes_;
    }
    return freed;
  }

  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Lookups that waited out a concurrent loader and were then served its
  /// payload — the scan-sharing counter (a subset of hits()).
  [[nodiscard]] std::uint64_t coalesced() const noexcept {
    return coalesced_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t resident_bytes() const {
    const std::lock_guard<std::mutex> lk(mu_);
    return used_bytes_;
  }

 private:
  struct Entry {
    std::size_t bucket = 0;
    std::size_t bytes = 0;
    std::shared_ptr<const std::vector<T>> payload;
  };
  using Lru = std::list<Entry>;  // front = most recent

  [[nodiscard]] std::size_t granted_bytes() const {
    return chunks_.size() * chunk_bytes_;
  }

  bool evict_tail_locked() {
    if (lru_.empty()) return false;
    const Entry& victim = lru_.back();
    used_bytes_ -= victim.bytes;
    map_.erase(victim.bucket);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Make `bytes` of room under the capacity cap: grow by chunks while the
  /// budget grants them (never reclaiming from peers — a scavenger does not
  /// steal), else evict LRU entries.
  bool make_room_locked(std::size_t bytes) {
    while (used_bytes_ + bytes > capacity_bytes_ && evict_tail_locked()) {
    }
    if (used_bytes_ + bytes > capacity_bytes_) return false;
    for (;;) {
      if (used_bytes_ + bytes <= granted_bytes()) return true;
      auto grown = budget_.try_reserve(chunk_bytes_, /*allow_reclaim=*/false);
      if (grown) {
        chunks_.push_back(std::move(*grown));
        continue;
      }
      if (!evict_tail_locked()) return false;
    }
  }

  MemoryBudget& budget_;
  const std::size_t capacity_bytes_;
  const std::size_t chunk_bytes_;
  const std::uint64_t epoch_;
  std::atomic<bool> enabled_{false};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Lru lru_;
  std::map<std::size_t, typename Lru::iterator> map_;  // bucket -> entry
  std::set<std::size_t> loading_;  // buckets with a loader in flight
  std::vector<MemoryReservation> chunks_;
  std::size_t used_bytes_ = 0;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

template <EmRecord T, typename Less = std::less<T>>
class SplitterIndex {
 public:
  SplitterIndex() = default;

  /// Build the index over `data`: one approximate equi-depth partitioning
  /// into `buckets` buckets (sizes within `slack` of N/K) plus one scan for
  /// the per-bucket maxima.  `data` is consumed logically, not physically —
  /// the index owns its own partitioned copy.
  static SplitterIndex build(Context& ctx, const EmVector<T>& data,
                             std::uint64_t buckets, double slack = 0.25,
                             Less less = {}) {
    const std::uint64_t n = data.size();
    if (buckets == 0 || buckets > n) {
      throw std::invalid_argument("SplitterIndex: buckets must be in [1, N]");
    }
    if (slack < 0.0) {
      throw std::invalid_argument("SplitterIndex: slack must be >= 0");
    }
    auto part = approx_partitioning<T, Less>(
        ctx, data, equi_depth_spec(n, buckets, slack), less);
    return from_partitioning(ctx, std::move(part), less);
  }

  /// Wrap an existing partitioning (bounds + partitioned data) as an index:
  /// one scan computes the maxima.  The partitioning's data is adopted.
  static SplitterIndex from_partitioning(Context& ctx,
                                         ApproxPartitioning<T> part,
                                         Less less = {}) {
    SplitterIndex idx;
    idx.ctx_ = &ctx;
    idx.less_ = less;
    idx.data_ = std::move(part.data);
    idx.bounds_ = std::move(part.bounds);
    idx.scan_uppers();
    return idx;
  }

  /// Re-bind an index over storage recovered from the checkpoint journal:
  /// `data` is a (typically non-owning) vector over the published extent,
  /// `bounds`/`uppers` were decoded from the journal payload.  No I/O.
  static SplitterIndex adopt(Context& ctx, EmVector<T> data,
                             std::vector<std::uint64_t> bounds,
                             std::vector<T> uppers, Less less = {}) {
    SplitterIndex idx;
    idx.ctx_ = &ctx;
    idx.less_ = less;
    idx.data_ = std::move(data);
    idx.bounds_ = std::move(bounds);
    idx.uppers_ = std::move(uppers);
    if (idx.bounds_.size() < 2 || idx.uppers_.size() + 1 != idx.bounds_.size()) {
      throw std::invalid_argument("SplitterIndex::adopt: malformed bounds");
    }
    return idx;
  }

  [[nodiscard]] bool bound() const noexcept { return ctx_ != nullptr; }
  [[nodiscard]] std::uint64_t size() const noexcept { return bounds_.back(); }
  [[nodiscard]] std::uint64_t buckets() const noexcept {
    return bounds_.size() - 1;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] const std::vector<T>& uppers() const noexcept {
    return uppers_;
  }
  [[nodiscard]] EmVector<T>& data() noexcept { return data_; }
  [[nodiscard]] const EmVector<T>& data() const noexcept { return data_; }

  /// Attach this epoch's bucket-scan cache (main-thread, before queries are
  /// served on this index); nullptr detaches.  The cache's own epoch tag is
  /// the caller's responsibility to match the epoch this index serves.
  void attach_bucket_cache(std::shared_ptr<BucketScanCache<T>> cache) {
    bucket_cache_ = std::move(cache);
  }
  [[nodiscard]] const std::shared_ptr<BucketScanCache<T>>& bucket_cache()
      const noexcept {
    return bucket_cache_;
  }

  /// Exact rank of `x`: #{e in S : e <= x}.  Scans only the straddled
  /// bucket; a probe above the global maximum (or below everything) costs
  /// zero I/Os.
  [[nodiscard]] QueryResult<std::uint64_t> rank(const T& x) const {
    // First bucket whose maximum is >= x: buckets before it are entirely
    // <= x (their maxima are < x), buckets after entirely > x (their
    // elements exceed this bucket's maximum, which is >= x).
    const auto it =
        std::lower_bound(uppers_.begin(), uppers_.end(), x,
                         [&](const T& u, const T& v) { return less_(u, v); });
    const auto j = static_cast<std::size_t>(it - uppers_.begin());
    if (j == buckets()) return {size(), IoStats{}};
    QueryResult<std::uint64_t> out;
    out.value = bounds_[j];
    scan_bucket(j, [&](const T& e) {
      if (!less_(x, e)) ++out.value;  // e <= x
    }, out.io);
    return out;
  }

  /// Exact |S ∩ (lo, hi]| — the batch RangeQuery semantics.
  [[nodiscard]] QueryResult<std::uint64_t> range_count(const T& lo,
                                                       const T& hi) const {
    const auto rl = rank(lo);
    const auto rh = rank(hi);
    QueryResult<std::uint64_t> out;
    out.value = rh.value >= rl.value ? rh.value - rl.value : 0;
    out.io = rl.io;
    out.io += rh.io;
    return out;
  }

  /// A nearly equi-depth histogram with `k <= buckets()` buckets, by
  /// regrouping index buckets (group i takes buckets [iK/k, (i+1)K/k)).
  /// Sizes are exact at the returned boundaries; zero I/O — this is the
  /// payoff of keeping the routing table resident.
  [[nodiscard]] QueryResult<EquiDepthHistogram<T>> histogram(
      std::uint64_t k) const {
    const std::uint64_t kk = buckets();
    if (k == 0 || k > kk) {
      throw std::invalid_argument(
          "SplitterIndex::histogram: k must be in [1, buckets]");
    }
    QueryResult<EquiDepthHistogram<T>> out;
    out.value.total = size();
    out.value.sizes.reserve(static_cast<std::size_t>(k));
    out.value.boundaries.reserve(static_cast<std::size_t>(k - 1));
    for (std::uint64_t g = 0; g < k; ++g) {
      const auto lo = static_cast<std::size_t>(g * kk / k);
      const auto hi = static_cast<std::size_t>((g + 1) * kk / k);
      out.value.sizes.push_back(bounds_[hi] - bounds_[lo]);
      if (g + 1 < k) out.value.boundaries.push_back(uppers_[hi - 1]);
    }
    return out;
  }

  /// The k largest (or smallest) records, sorted ascending.  Whole tail
  /// (head) buckets are appended outright; the one straddled bucket is
  /// loaded and cut with nth_element.
  [[nodiscard]] QueryResult<std::vector<T>> top_k(std::uint64_t k,
                                                  bool largest = true) const {
    const std::uint64_t n = size();
    if (k == 0 || k > n) {
      throw std::invalid_argument("SplitterIndex::top_k: k must be in [1, N]");
    }
    QueryResult<std::vector<T>> out;
    out.value.reserve(static_cast<std::size_t>(k));
    auto res = ctx_->budget().reserve(k * sizeof(T));
    const std::uint64_t kk = buckets();
    std::uint64_t need = k;
    if (largest) {
      std::size_t j = static_cast<std::size_t>(kk);
      while (j > 0 && need >= bucket_size(j - 1)) {
        --j;
        need -= take_bucket(j, out.value, out.io);
      }
      if (need > 0) cut_bucket(j - 1, need, /*largest=*/true, out.value, out.io);
    } else {
      std::size_t j = 0;
      while (j < kk && need >= bucket_size(j)) {
        need -= take_bucket(j, out.value, out.io);
        ++j;
      }
      if (need > 0) cut_bucket(j, need, /*largest=*/false, out.value, out.io);
    }
    std::sort(out.value.begin(), out.value.end(), less_);
    return out;
  }

  /// Admission estimate: peak working-set bytes a query of `kind` (with
  /// parameter `k` where applicable) will reserve from the budget.  Upper
  /// bound by construction — the controller trades a little utilization for
  /// never admitting a query the engine's own reserve would then throw on.
  [[nodiscard]] std::uint64_t footprint_bytes(QueryKind kind,
                                              std::uint64_t k = 0) const {
    const std::uint64_t chunk =
        chunk_blocks() * ctx_->block_bytes() + max_bucket_bytes();
    switch (kind) {
      case QueryKind::kRank: return chunk;
      case QueryKind::kRange: return chunk;  // the two rank scans are serial
      case QueryKind::kHistogram: return k * (sizeof(T) + 8);
      case QueryKind::kTopK: return k * sizeof(T) + chunk;
    }
    return chunk;
  }

 private:
  [[nodiscard]] std::uint64_t bucket_size(std::size_t j) const {
    return bounds_[j + 1] - bounds_[j];
  }

  [[nodiscard]] std::uint64_t max_bucket_bytes() const {
    std::uint64_t mx = 0;
    for (std::size_t j = 0; j < buckets(); ++j) {
      mx = std::max(mx, bucket_size(j));
    }
    return mx * sizeof(T);
  }

  [[nodiscard]] std::size_t chunk_blocks() const {
    return std::max<std::size_t>(1, ctx_->io_tuning().batch_blocks);
  }

  /// Visit every record of bucket `j`, serving from the epoch's bucket-scan
  /// cache when one is attached, else scanning the device.  Per-query reads
  /// are geometry either way: a cache hit charges the same block count the
  /// device scan would (attributed as IoStats::bucket_hits), so base() sums
  /// are identical with the cache on or off.  Cache misses make this thread
  /// the bucket's single-flight loader: it scans the device once, answers
  /// its own query from the scan, and publishes the decoded payload for the
  /// bucket's waiters (scan sharing) and later queries.
  template <typename Visit>
  void scan_bucket(std::size_t j, Visit visit, IoStats& io) const {
    const std::uint64_t lo = bounds_[j], hi = bounds_[j + 1];
    if (lo == hi) return;
    BucketScanCache<T>* cache = bucket_cache_.get();
    if (cache != nullptr && cache->enabled()) {
      auto l = cache->lookup(j);
      if (l.payload != nullptr) {
        const std::size_t per = data_.block_records();
        const std::uint64_t nb = (hi - 1) / per - lo / per + 1;
        io.reads += nb;
        io.bucket_hits += nb;
        for (const T& e : *l.payload) visit(e);
        return;
      }
      if (l.loader) {
        bool cached = false;
        try {
          // The payload buffer is optional state: charged like any other
          // reservation, but a decline degrades to a plain scan instead of
          // shedding the query.
          auto res = ctx_->budget().try_reserve(bucket_size(j) * sizeof(T),
                                                /*allow_reclaim=*/false);
          if (res) {
            auto payload = std::make_shared<std::vector<T>>();
            payload->reserve(static_cast<std::size_t>(bucket_size(j)));
            scan_bucket_device(j, [&](const T& e) {
              payload->push_back(e);
              visit(e);
            }, io);
            cache->publish(j, std::move(payload));
            cached = true;
          }
        } catch (...) {
          cache->abort_load(j);
          throw;
        }
        if (cached) return;
        cache->abort_load(j);
      }
      // Not a loader and no payload: the cache was retired mid-wait.
    }
    scan_bucket_device(j, visit, io);
  }

  /// The device path of scan_bucket: read bucket `j`'s blocks in counted
  /// batches through the device (and so through the block cache); charges
  /// the reads and the thread's cache hits to `io`.
  template <typename Visit>
  void scan_bucket_device(std::size_t j, Visit visit, IoStats& io) const {
    const std::size_t per = data_.block_records();
    const std::uint64_t lo = bounds_[j], hi = bounds_[j + 1];
    if (lo == hi) return;
    const std::size_t first_block = static_cast<std::size_t>(lo / per);
    const std::size_t last_block = static_cast<std::size_t>((hi - 1) / per);
    // Multi-block batches need records to tile blocks exactly.
    const std::size_t batch =
        data_.contiguous_layout() ? chunk_blocks() : std::size_t{1};
    auto res = ctx_->budget().reserve(batch * ctx_->block_bytes());
    std::vector<T> buf(batch * per);
    (void)BlockDevice::take_thread_cache_hits();  // clear stale tally
    for (std::size_t b = first_block; b <= last_block;) {
      const std::size_t nb = std::min(batch, last_block - b + 1);
      data_.read_blocks(b, nb, std::span<T>(buf.data(), nb * per));
      io.reads += nb;
      // Records of this batch that fall inside [lo, hi).
      const std::uint64_t base = static_cast<std::uint64_t>(b) * per;
      const std::uint64_t r0 = std::max<std::uint64_t>(base, lo);
      const std::uint64_t r1 = std::min<std::uint64_t>(base + nb * per, hi);
      for (std::uint64_t r = r0; r < r1; ++r) {
        visit(buf[static_cast<std::size_t>(r - base)]);
      }
      b += nb;
    }
    const std::uint64_t hits = BlockDevice::take_thread_cache_hits();
    io.cache_hits += hits;
    io.cache_misses += io.reads >= hits ? io.reads - hits : 0;
  }

  /// Append all of bucket `j` to `out`; returns its size.
  std::uint64_t take_bucket(std::size_t j, std::vector<T>& out,
                            IoStats& io) const {
    scan_bucket(j, [&](const T& e) { out.push_back(e); }, io);
    return bucket_size(j);
  }

  /// Append the `need` largest (or smallest) records of bucket `j`.
  void cut_bucket(std::size_t j, std::uint64_t need, bool largest,
                  std::vector<T>& out, IoStats& io) const {
    std::vector<T> bucket;
    bucket.reserve(static_cast<std::size_t>(bucket_size(j)));
    auto res = ctx_->budget().reserve(bucket_size(j) * sizeof(T));
    scan_bucket(j, [&](const T& e) { bucket.push_back(e); }, io);
    const auto nth = static_cast<std::ptrdiff_t>(
        largest ? bucket.size() - need : need);
    std::nth_element(bucket.begin(), bucket.begin() + nth, bucket.end(),
                     less_);
    if (largest) {
      out.insert(out.end(), bucket.begin() + nth, bucket.end());
    } else {
      out.insert(out.end(), bucket.begin(), bucket.begin() + nth);
    }
  }

  /// One N/B scan recording each bucket's maximum (build-time only).
  void scan_uppers() {
    uppers_.assign(static_cast<std::size_t>(buckets()), T{});
    StreamReader<T> reader(data_);
    std::size_t j = 0;
    std::uint64_t i = 0;
    bool first_in_bucket = true;
    while (!reader.done()) {
      const T e = reader.next();
      while (i >= bounds_[j + 1]) {
        ++j;
        first_in_bucket = true;
      }
      if (first_in_bucket || less_(uppers_[j], e)) {
        uppers_[j] = e;
        first_in_bucket = false;
      }
      ++i;
    }
    // Empty buckets (possible under left-grounded padding) inherit the
    // previous bucket's maximum so lower_bound routing stays monotone.
    for (std::size_t b = 1; b < uppers_.size(); ++b) {
      if (bounds_[b] == bounds_[b + 1]) uppers_[b] = uppers_[b - 1];
    }
  }

  Context* ctx_ = nullptr;
  Less less_{};
  EmVector<T> data_;                  ///< bucket-partitioned records
  std::vector<std::uint64_t> bounds_;  ///< K+1 record offsets
  std::vector<T> uppers_;              ///< K per-bucket maxima (resident)
  std::shared_ptr<BucketScanCache<T>> bucket_cache_;  ///< this epoch's, or null
};

}  // namespace emsplit

// server.cpp — SplitterServer: admission, epoch publish/recover, socket.

#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <optional>
#include <sstream>
#include <utility>

#include "em/checkpoint.hpp"
#include "em/file_io.hpp"
#include "em/memory_budget.hpp"

namespace emsplit {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

[[nodiscard]] bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  const char* b = s.data();
  const char* e = b + s.size();
  const auto [p, ec] = std::from_chars(b, e, out);
  return ec == std::errc{} && p == e;
}

[[nodiscard]] bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t w = ::write(fd, data.data() + off, data.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

SplitterServer::SplitterServer(Context& ctx, Config cfg)
    : ctx_(&ctx), cfg_(std::move(cfg)) {}

SplitterServer::~SplitterServer() = default;

bool SplitterServer::persistent() const {
  return ctx_->checkpoint() != nullptr && !cfg_.state_dir.empty();
}

std::uint64_t SplitterServer::epoch_fingerprint(std::uint64_t epoch) const {
  // Epoch-numbered service fingerprint: tag + geometry + epoch.  Distinct
  // from every sort/partition fingerprint by the leading tag word.
  std::uint64_t h = fingerprint_mix(kFingerprintSeed, 0x53504C4954535256ULL);
  h = fingerprint_mix(h, cfg_.buckets);
  h = fingerprint_mix(h, ctx_->block_bytes());
  h = fingerprint_mix(h, epoch);
  return h;
}

std::string SplitterServer::current_path() const {
  return cfg_.state_dir + "/SERVICE_CURRENT";
}

void SplitterServer::write_current(std::uint64_t epoch) const {
  // Write-to-temp + atomic rename: the CURRENT file either names the old
  // epoch or the new one, never a torn value.
  const std::string path = current_path();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("service: cannot write " + tmp);
  }
  const bool ok = std::fprintf(f, "%llu\n",
                               static_cast<unsigned long long>(epoch)) > 0;
  if (std::fclose(f) != 0 || !ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("service: cannot publish " + path);
  }
}

std::shared_ptr<const SplitterServer::Index> SplitterServer::snapshot(
    std::uint64_t& epoch_out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  epoch_out = epoch_;
  return current_;
}

std::uint64_t SplitterServer::epoch() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

std::uint64_t SplitterServer::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return current_ ? current_->size() : 0;
}

SplitterServer::Index SplitterServer::build_epoch() {
  if (cfg_.source_path.empty()) {
    throw std::invalid_argument("service: no source file configured");
  }
  EmVector<Record> data = import_file<Record>(*ctx_, cfg_.source_path);
  if (data.size() == 0) {
    throw std::invalid_argument("service: source file is empty");
  }
  const std::uint64_t kk = std::min<std::uint64_t>(cfg_.buckets, data.size());
  return Index::build(*ctx_, data, kk, cfg_.slack);
}

void SplitterServer::publish(Index idx) {
  std::uint64_t next = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    next = epoch_ + 1;
  }
  CheckpointJournal* jr = persistent() ? ctx_->checkpoint() : nullptr;
  std::shared_ptr<const Index> fresh;
  if (jr != nullptr) {
    const std::uint64_t fp = epoch_fingerprint(next);
    // A crash between a previous publish and its CURRENT bump leaves an
    // orphan under this fingerprint; reclaim it before re-publishing.
    if (jr->resume_sort(fp)) {
      ctx_->device().deallocate(jr->take_sort_extent(fp));
    }
    const std::uint64_t n = idx.size();
    std::vector<std::uint64_t> bounds = idx.bounds();
    std::vector<Record> uppers = idx.uppers();
    std::vector<std::uint64_t> payload;
    payload.reserve(2 + bounds.size() + 2 * uppers.size());
    payload.push_back(1);  // payload version
    payload.push_back(bounds.size() - 1);
    payload.insert(payload.end(), bounds.begin(), bounds.end());
    for (const Record& u : uppers) {
      payload.push_back(u.key);
      payload.push_back(u.payload);
    }
    BlockRange extent = idx.data().release_extent();
    // The crash-injection point: set_crash_after_publishes() fires inside
    // this append, after the journal entry lands but before CURRENT moves.
    jr->publish_sort_pass(fp, 1, extent, n, payload);
    EmVector<Record> view =
        EmVector<Record>::adopt(*ctx_, extent, n, /*owning=*/false);
    fresh = std::make_shared<Index>(Index::adopt(
        *ctx_, std::move(view), std::move(bounds), std::move(uppers)));
    write_current(next);
  } else {
    fresh = std::make_shared<Index>(std::move(idx));
  }
  std::shared_ptr<const Index> old;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    old = std::exchange(current_, std::move(fresh));
    epoch_ = next;
  }
  if (old) {
    // Queries in flight pinned the old snapshot; wait them out, then retire
    // the superseded epoch's blocks.
    while (old.use_count() > 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    old.reset();
    if (jr != nullptr) {
      const std::uint64_t pfp = epoch_fingerprint(next - 1);
      if (jr->resume_sort(pfp)) {
        ctx_->device().deallocate(jr->take_sort_extent(pfp));
      }
    }
  }
}

bool SplitterServer::recover() {
  CheckpointJournal* jr = persistent() ? ctx_->checkpoint() : nullptr;
  if (jr == nullptr) return false;
  std::FILE* f = std::fopen(current_path().c_str(), "r");
  if (f == nullptr) return false;
  unsigned long long e = 0;
  const bool read_ok = std::fscanf(f, "%llu", &e) == 1;
  std::fclose(f);
  if (!read_ok || e == 0) return false;
  const auto st = jr->resume_sort(epoch_fingerprint(e));
  if (!st) return false;

  const std::vector<std::uint64_t>& p = st->offsets;
  if (p.size() < 3 || p[0] != 1) {
    throw std::runtime_error("service: corrupt epoch payload (header)");
  }
  const std::uint64_t kk = p[1];
  if (kk == 0 || p.size() != 3 * kk + 3) {
    throw std::runtime_error("service: corrupt epoch payload (shape)");
  }
  std::vector<std::uint64_t> bounds(
      p.begin() + 2, p.begin() + 2 + static_cast<std::ptrdiff_t>(kk) + 1);
  std::vector<Record> uppers(static_cast<std::size_t>(kk));
  for (std::size_t i = 0; i < uppers.size(); ++i) {
    uppers[i] = Record{p[3 + static_cast<std::size_t>(kk) + 2 * i],
                       p[4 + static_cast<std::size_t>(kk) + 2 * i]};
  }
  if (bounds.back() != st->size) {
    throw std::runtime_error("service: corrupt epoch payload (size)");
  }
  EmVector<Record> view = EmVector<Record>::adopt(
      *ctx_, st->extent, static_cast<std::size_t>(st->size), /*owning=*/false);
  auto idx = std::make_shared<Index>(Index::adopt(
      *ctx_, std::move(view), std::move(bounds), std::move(uppers)));
  {
    const std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(idx);
    epoch_ = e;
  }
  // A crash mid-refresh may have left the *next* epoch published in the
  // journal with CURRENT still naming this one: reclaim the orphan.
  const std::uint64_t nfp = epoch_fingerprint(e + 1);
  if (jr->resume_sort(nfp)) {
    ctx_->device().deallocate(jr->take_sort_extent(nfp));
  }
  recovered_ = true;
  return true;
}

void SplitterServer::start() {
  const std::lock_guard<std::mutex> lock(refresh_mu_);
  if (recover()) return;
  publish(build_epoch());
}

std::uint64_t SplitterServer::refresh() {
  const std::lock_guard<std::mutex> lock(refresh_mu_);
  publish(build_epoch());
  return epoch();
}

SplitterServer::Reply SplitterServer::query(const Request& req,
                                            std::uint64_t client) {
  const auto t0 = Clock::now();
  Reply rep;
  std::shared_ptr<const Index> idx = snapshot(rep.epoch);
  QueryTrace row;
  row.kind = query_kind_name(req.kind);
  row.client = client;
  row.epoch = rep.epoch;
  row.k = req.k;
  if (!idx) {
    rep.admission = "error";
    rep.error = "service not started";
    rep.seconds = seconds_since(t0);
    row.admission = rep.admission;
    row.detail = rep.error;
    row.seconds = rep.seconds;
    trace_.record(std::move(row));
    return rep;
  }

  // Admission: cost the request, charge the budget, queue briefly, shed.
  const std::uint64_t need = idx->footprint_bytes(req.kind, req.k);
  rep.admission = "admit";
  std::optional<MemoryReservation> ticket = ctx_->budget().try_reserve(need);
  while (!ticket && !stop_.load()) {
    if (seconds_since(t0) >= cfg_.queue_wait) break;
    rep.admission = "queued";
    std::this_thread::sleep_for(std::chrono::microseconds(500));
    ticket = ctx_->budget().try_reserve(need);
  }
  rep.queue_seconds = seconds_since(t0);
  if (!ticket) {
    rep.admission = "shed";
    rep.error = "over budget: query needs " + std::to_string(need) + " bytes";
    shed_.fetch_add(1);
  } else {
    // Two-phase admission: drop the ticket so the engine can reserve its
    // actual working set (the estimate is an upper bound on it).  A query
    // racing past admission into a collision sheds at the engine's own
    // reserve instead.
    ticket.reset();
    try {
      switch (req.kind) {
        case QueryKind::kRank: {
          const auto r = idx->rank(req.lo);
          rep.value = r.value;
          rep.io = r.io;
          break;
        }
        case QueryKind::kRange: {
          const auto r = idx->range_count(req.lo, req.hi);
          rep.value = r.value;
          rep.io = r.io;
          break;
        }
        case QueryKind::kHistogram: {
          auto r = idx->histogram(req.k);
          rep.hist = std::move(r.value);
          rep.io = r.io;
          break;
        }
        case QueryKind::kTopK: {
          auto r = idx->top_k(req.k, req.largest);
          rep.records = std::move(r.value);
          rep.io = r.io;
          break;
        }
      }
      rep.ok = true;
      served_.fetch_add(1);
    } catch (const BudgetExceeded& ex) {
      rep.admission = "shed";
      rep.error = ex.what();
      shed_.fetch_add(1);
    } catch (const std::exception& ex) {
      rep.admission = "error";
      rep.error = ex.what();
    }
  }
  rep.seconds = seconds_since(t0);

  row.admission = rep.admission;
  row.ok = rep.ok;
  row.queue_seconds = rep.queue_seconds;
  row.seconds = rep.seconds;
  row.io = rep.io;
  row.value = rep.value;
  row.detail = rep.error;
  trace_.record(std::move(row));
  return rep;
}

std::string SplitterServer::handle_line(const std::string& line,
                                        std::uint64_t client,
                                        bool& close_conn) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;

  const auto bad = [&](const std::string& why) {
    QueryTrace row;
    row.kind = "?";
    row.client = client;
    row.epoch = epoch();
    row.admission = "error";
    row.detail = why + ": " + line;
    trace_.record(std::move(row));
    return "ERR " + why + "\n";
  };
  const auto u64_arg = [&](std::uint64_t& out) {
    std::string tok;
    return static_cast<bool>(in >> tok) && parse_u64(tok, out);
  };

  if (cmd == "RANK" || cmd == "RANGE") {
    Request req;
    req.kind = cmd == "RANK" ? QueryKind::kRank : QueryKind::kRange;
    std::uint64_t lo = 0;
    if (!u64_arg(lo)) return bad("usage: " + cmd + " <key> [<key>]");
    // Key-level probes: payload saturated, so rank(key) counts every record
    // with a key <= the probe regardless of payload.
    req.lo = Record{lo, ~0ULL};
    if (req.kind == QueryKind::kRange) {
      std::uint64_t hi = 0;
      if (!u64_arg(hi)) return bad("usage: RANGE <lo-key> <hi-key>");
      req.hi = Record{hi, ~0ULL};
    }
    const Reply rep = query(req, client);
    if (!rep.ok) return (rep.admission == "shed" ? "SHED " : "ERR ") + rep.error + "\n";
    return "OK " + std::to_string(rep.value) + "\n";
  }
  if (cmd == "HIST") {
    Request req;
    req.kind = QueryKind::kHistogram;
    if (!u64_arg(req.k)) return bad("usage: HIST <k>");
    const Reply rep = query(req, client);
    if (!rep.ok) return (rep.admission == "shed" ? "SHED " : "ERR ") + rep.error + "\n";
    std::string out = "OK " + std::to_string(rep.hist.buckets()) + " " +
                      std::to_string(rep.hist.total) + "\n";
    for (std::size_t i = 0; i < rep.hist.buckets(); ++i) {
      out += "BUCKET " + std::to_string(rep.hist.sizes[i]);
      if (i < rep.hist.boundaries.size()) {
        out += " " + std::to_string(rep.hist.boundaries[i].key);
      }
      out += "\n";
    }
    return out + "END\n";
  }
  if (cmd == "TOPK") {
    Request req;
    req.kind = QueryKind::kTopK;
    if (!u64_arg(req.k)) return bad("usage: TOPK <k> [MIN]");
    std::string dir;
    if (in >> dir) {
      if (dir == "MIN") {
        req.largest = false;
      } else if (dir != "MAX") {
        return bad("usage: TOPK <k> [MIN]");
      }
    }
    const Reply rep = query(req, client);
    if (!rep.ok) return (rep.admission == "shed" ? "SHED " : "ERR ") + rep.error + "\n";
    std::string out = "OK " + std::to_string(rep.records.size()) + "\n";
    for (const Record& r : rep.records) {
      out += "REC " + std::to_string(r.key) + " " + std::to_string(r.payload) +
             "\n";
    }
    return out + "END\n";
  }
  if (cmd == "STATS") {
    return "OK epoch=" + std::to_string(epoch()) +
           " n=" + std::to_string(size()) +
           " served=" + std::to_string(served_.load()) +
           " shed=" + std::to_string(shed_.load()) + "\n";
  }
  if (cmd == "EPOCH") {
    return "OK " + std::to_string(epoch()) + "\n";
  }
  if (cmd == "REFRESH") {
    try {
      return "OK " + std::to_string(refresh()) + "\n";
    } catch (const std::exception& ex) {
      return std::string("ERR ") + ex.what() + "\n";
    }
  }
  if (cmd == "SHUTDOWN") {
    close_conn = true;
    stop();
    return "OK bye\n";
  }
  return bad("unknown command");
}

void SplitterServer::serve_conn(int fd, std::uint64_t client) {
  std::string buf;
  char tmp[4096];
  bool close_conn = false;
  while (!close_conn && !stop_.load()) {
    const auto nl = buf.find('\n');
    if (nl == std::string::npos) {
      pollfd p{};
      p.fd = fd;
      p.events = POLLIN;
      const int pr = ::poll(&p, 1, 100);
      if (pr < 0 && errno != EINTR) break;
      if (pr <= 0) continue;
      const ssize_t r = ::read(fd, tmp, sizeof(tmp));
      if (r <= 0) break;
      buf.append(tmp, static_cast<std::size_t>(r));
      continue;
    }
    std::string line = buf.substr(0, nl);
    buf.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const std::string out = handle_line(line, client, close_conn);
    if (!out.empty() && !write_all(fd, out)) break;
  }
  ::close(fd);
}

void SplitterServer::serve_unix(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("service: socket path too long");
  }
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                socket_path.c_str());

  const int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (lfd < 0) throw std::runtime_error("service: socket() failed");
  ::unlink(socket_path.c_str());
  if (::bind(lfd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(lfd, 64) < 0) {
    ::close(lfd);
    throw std::runtime_error("service: cannot listen on " + socket_path);
  }

  std::vector<std::thread> conns;
  std::uint64_t next_client = 0;
  while (!stop_.load()) {
    pollfd p{};
    p.fd = lfd;
    p.events = POLLIN;
    const int pr = ::poll(&p, 1, 100);
    if (pr < 0 && errno != EINTR) break;
    if (pr <= 0) continue;
    const int cfd = ::accept(lfd, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    ++next_client;
    conns.emplace_back(&SplitterServer::serve_conn, this, cfd, next_client);
  }
  for (std::thread& t : conns) t.join();
  ::close(lfd);
  ::unlink(socket_path.c_str());
}

}  // namespace emsplit

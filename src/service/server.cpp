// server.cpp — SplitterServer: admission, epoch publish/recover, sockets.

#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <optional>
#include <sstream>
#include <utility>

#include "em/checkpoint.hpp"
#include "em/file_io.hpp"
#include "em/memory_budget.hpp"

namespace emsplit {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

[[nodiscard]] bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  const char* b = s.data();
  const char* e = b + s.size();
  const auto [p, ec] = std::from_chars(b, e, out);
  return ec == std::errc{} && p == e;
}

[[nodiscard]] bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t w = ::write(fd, data.data() + off, data.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

/// Write a batch of responses with as few syscalls as possible — one
/// writev() per up-to-64 iovecs, resuming across short writes.  The strings
/// must stay alive for the duration of the call.
[[nodiscard]] bool writev_all(int fd, const std::vector<std::string>& parts) {
  std::vector<iovec> iov;
  iov.reserve(parts.size());
  for (const std::string& s : parts) {
    if (s.empty()) continue;
    iov.push_back(iovec{const_cast<char*>(s.data()), s.size()});
  }
  std::size_t i = 0;
  while (i < iov.size()) {
    const int cnt = static_cast<int>(std::min<std::size_t>(iov.size() - i, 64));
    const ssize_t w = ::writev(fd, &iov[i], cnt);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    std::size_t left = static_cast<std::size_t>(w);
    while (i < iov.size() && left >= iov[i].iov_len) {
      left -= iov[i].iov_len;
      ++i;
    }
    if (i < iov.size() && left > 0) {
      iov[i].iov_base = static_cast<char*>(iov[i].iov_base) + left;
      iov[i].iov_len -= left;
    }
  }
  return true;
}

}  // namespace

SplitterServer::SplitterServer(Context& ctx, Config cfg)
    : ctx_(&ctx), cfg_(std::move(cfg)) {
  // Wake queued queries the moment budget bytes free up (condvar, never a
  // poll).  The waiters never touch the budget while holding admit_mu_, so
  // this listener — which may run under arbitrary locks on whatever thread
  // released the bytes — only bumps a generation and taps the mutex.
  ctx_->budget().set_release_listener([this]() noexcept {
    if (admit_waiters_.load(std::memory_order_acquire) == 0) return;
    admit_gen_.fetch_add(1, std::memory_order_release);
    { const std::lock_guard<std::mutex> lk(admit_mu_); }
    admit_cv_.notify_all();
  });
  // Forward budget reclaims to the *current* epoch's bucket cache.  The
  // registration outlives every cache (they turn over per epoch), so a
  // reclaim can never race a cache destructor.
  cache_reclaimer_id_ =
      ctx_->budget().add_reclaimer([this](std::size_t need) -> std::size_t {
        std::shared_ptr<BucketScanCache<Record>> cache;
        {
          const std::lock_guard<std::mutex> lock(mu_);
          cache = bucket_cache_;
        }
        return cache ? cache->shed(need) : 0;
      });
}

SplitterServer::~SplitterServer() {
  ctx_->budget().set_release_listener(nullptr);
  ctx_->budget().remove_reclaimer(cache_reclaimer_id_);
  std::shared_ptr<BucketScanCache<Record>> cache;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    cache = std::move(bucket_cache_);
    current_.reset();  // deleter only signals; owner_ tears down below
  }
  if (cache) cache->retire();
}

bool SplitterServer::persistent() const {
  return ctx_->checkpoint() != nullptr && !cfg_.state_dir.empty();
}

std::uint64_t SplitterServer::epoch_fingerprint(std::uint64_t epoch) const {
  // Epoch-numbered service fingerprint: tag + geometry + epoch.  Distinct
  // from every sort/partition fingerprint by the leading tag word.
  std::uint64_t h = fingerprint_mix(kFingerprintSeed, 0x53504C4954535256ULL);
  h = fingerprint_mix(h, cfg_.buckets);
  h = fingerprint_mix(h, ctx_->block_bytes());
  h = fingerprint_mix(h, epoch);
  return h;
}

std::string SplitterServer::current_path() const {
  return cfg_.state_dir + "/SERVICE_CURRENT";
}

void SplitterServer::write_current(std::uint64_t epoch) const {
  // Write-to-temp + atomic rename: the CURRENT file either names the old
  // epoch or the new one, never a torn value.
  const std::string path = current_path();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("service: cannot write " + tmp);
  }
  const bool ok = std::fprintf(f, "%llu\n",
                               static_cast<unsigned long long>(epoch)) > 0;
  if (std::fclose(f) != 0 || !ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("service: cannot publish " + path);
  }
}

std::shared_ptr<const SplitterServer::Index> SplitterServer::snapshot(
    std::uint64_t& epoch_out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  epoch_out = epoch_;
  return current_;
}

std::uint64_t SplitterServer::epoch() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

std::uint64_t SplitterServer::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return current_ ? current_->size() : 0;
}

std::shared_ptr<BucketScanCache<Record>> SplitterServer::bucket_cache() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return bucket_cache_;
}

SplitterServer::Index SplitterServer::build_epoch() {
  if (cfg_.source_path.empty()) {
    throw std::invalid_argument("service: no source file configured");
  }
  EmVector<Record> data = import_file<Record>(*ctx_, cfg_.source_path);
  if (data.size() == 0) {
    throw std::invalid_argument("service: source file is empty");
  }
  const std::uint64_t kk = std::min<std::uint64_t>(cfg_.buckets, data.size());
  return Index::build(*ctx_, data, kk, cfg_.slack);
}

void SplitterServer::adopt_epoch(
    std::unique_ptr<Index> built, std::uint64_t epoch,
    std::shared_ptr<const Index>& out_snapshot, std::unique_ptr<Index>& out_owner,
    std::shared_ptr<BucketScanCache<Record>>& out_cache) {
  if (cfg_.bucket_cache_blocks > 0) {
    const std::size_t bb = ctx_->block_bytes();
    const std::size_t cap =
        static_cast<std::size_t>(cfg_.bucket_cache_blocks) * bb;
    out_cache = std::make_shared<BucketScanCache<Record>>(
        ctx_->budget(), cap, std::min<std::size_t>(cap, 64 * bb), epoch);
    if (out_cache->enabled()) {
      built->attach_bucket_cache(out_cache);
    } else {
      out_cache.reset();  // budget declined the probe — run uncached
    }
  }
  // The snapshot's deleter only *signals* drain; out_owner keeps ownership
  // so the index (and any extent it owns) is destroyed on the publish
  // thread, preserving the single-allocator-thread rule.
  Index* raw = built.get();
  out_owner = std::move(built);
  out_snapshot = std::shared_ptr<const Index>(raw, [this](const Index*) {
    { const std::lock_guard<std::mutex> lk(retire_mu_); }
    retire_cv_.notify_all();
  });
}

void SplitterServer::publish(Index idx) {
  std::uint64_t next = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    next = epoch_ + 1;
  }
  CheckpointJournal* jr = persistent() ? ctx_->checkpoint() : nullptr;
  std::unique_ptr<Index> built;
  if (jr != nullptr) {
    const std::uint64_t fp = epoch_fingerprint(next);
    // A crash between a previous publish and its CURRENT bump leaves an
    // orphan under this fingerprint; reclaim it before re-publishing.
    if (jr->resume_sort(fp)) {
      ctx_->device().deallocate(jr->take_sort_extent(fp));
    }
    const std::uint64_t n = idx.size();
    std::vector<std::uint64_t> bounds = idx.bounds();
    std::vector<Record> uppers = idx.uppers();
    std::vector<std::uint64_t> payload;
    payload.reserve(2 + bounds.size() + 2 * uppers.size());
    payload.push_back(1);  // payload version
    payload.push_back(bounds.size() - 1);
    payload.insert(payload.end(), bounds.begin(), bounds.end());
    for (const Record& u : uppers) {
      payload.push_back(u.key);
      payload.push_back(u.payload);
    }
    BlockRange extent = idx.data().release_extent();
    // The crash-injection point: set_crash_after_publishes() fires inside
    // this append, after the journal entry lands but before CURRENT moves.
    jr->publish_sort_pass(fp, 1, extent, n, payload);
    EmVector<Record> view =
        EmVector<Record>::adopt(*ctx_, extent, n, /*owning=*/false);
    built = std::make_unique<Index>(Index::adopt(
        *ctx_, std::move(view), std::move(bounds), std::move(uppers)));
    write_current(next);
  } else {
    built = std::make_unique<Index>(std::move(idx));
  }
  std::shared_ptr<const Index> fresh;
  std::unique_ptr<Index> fresh_owner;
  std::shared_ptr<BucketScanCache<Record>> fresh_cache;
  adopt_epoch(std::move(built), next, fresh, fresh_owner, fresh_cache);

  std::shared_ptr<const Index> old;
  std::unique_ptr<Index> old_owner;
  std::shared_ptr<BucketScanCache<Record>> old_cache;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    old = std::exchange(current_, std::move(fresh));
    old_owner = std::exchange(owner_, std::move(fresh_owner));
    old_cache = std::exchange(bucket_cache_, std::move(fresh_cache));
    epoch_ = next;
  }
  // Retire the superseded epoch's cache the instant the swap lands: no new
  // query can reach it (they snapshot the fresh epoch), and queries still in
  // flight on the old epoch degrade to device scans — a stale payload can
  // never be served under the new epoch.
  if (old_cache) old_cache->retire();
  if (old) {
    // Queries in flight pinned the old snapshot; wait for the drain —
    // signalled by the snapshot deleter, never sleep-polled — then tear the
    // superseded index down on this thread and retire its blocks.
    std::weak_ptr<const Index> gone = old;
    old.reset();
    if (!gone.expired()) {
      std::unique_lock<std::mutex> lk(retire_mu_);
      if (!gone.expired()) {
        retire_waits_.fetch_add(1, std::memory_order_relaxed);
        retire_cv_.wait(lk, [&] { return gone.expired(); });
      }
    }
    old_owner.reset();
    if (jr != nullptr) {
      const std::uint64_t pfp = epoch_fingerprint(next - 1);
      if (jr->resume_sort(pfp)) {
        ctx_->device().deallocate(jr->take_sort_extent(pfp));
      }
    }
  }
}

bool SplitterServer::recover() {
  CheckpointJournal* jr = persistent() ? ctx_->checkpoint() : nullptr;
  if (jr == nullptr) return false;
  std::FILE* f = std::fopen(current_path().c_str(), "r");
  if (f == nullptr) return false;
  unsigned long long e = 0;
  const bool read_ok = std::fscanf(f, "%llu", &e) == 1;
  std::fclose(f);
  if (!read_ok || e == 0) return false;
  const auto st = jr->resume_sort(epoch_fingerprint(e));
  if (!st) return false;

  const std::vector<std::uint64_t>& p = st->offsets;
  if (p.size() < 3 || p[0] != 1) {
    throw std::runtime_error("service: corrupt epoch payload (header)");
  }
  const std::uint64_t kk = p[1];
  if (kk == 0 || p.size() != 3 * kk + 3) {
    throw std::runtime_error("service: corrupt epoch payload (shape)");
  }
  std::vector<std::uint64_t> bounds(
      p.begin() + 2, p.begin() + 2 + static_cast<std::ptrdiff_t>(kk) + 1);
  std::vector<Record> uppers(static_cast<std::size_t>(kk));
  for (std::size_t i = 0; i < uppers.size(); ++i) {
    uppers[i] = Record{p[3 + static_cast<std::size_t>(kk) + 2 * i],
                       p[4 + static_cast<std::size_t>(kk) + 2 * i]};
  }
  if (bounds.back() != st->size) {
    throw std::runtime_error("service: corrupt epoch payload (size)");
  }
  EmVector<Record> view = EmVector<Record>::adopt(
      *ctx_, st->extent, static_cast<std::size_t>(st->size), /*owning=*/false);
  auto built = std::make_unique<Index>(Index::adopt(
      *ctx_, std::move(view), std::move(bounds), std::move(uppers)));
  std::shared_ptr<const Index> snap;
  std::unique_ptr<Index> own;
  std::shared_ptr<BucketScanCache<Record>> cache;
  adopt_epoch(std::move(built), e, snap, own, cache);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(snap);
    owner_ = std::move(own);
    bucket_cache_ = std::move(cache);
    epoch_ = e;
  }
  // A crash mid-refresh may have left the *next* epoch published in the
  // journal with CURRENT still naming this one: reclaim the orphan.
  const std::uint64_t nfp = epoch_fingerprint(e + 1);
  if (jr->resume_sort(nfp)) {
    ctx_->device().deallocate(jr->take_sort_extent(nfp));
  }
  recovered_ = true;
  return true;
}

void SplitterServer::start() {
  const std::lock_guard<std::mutex> lock(refresh_mu_);
  if (recover()) return;
  publish(build_epoch());
}

std::uint64_t SplitterServer::refresh() {
  const std::lock_guard<std::mutex> lock(refresh_mu_);
  publish(build_epoch());
  return epoch();
}

SplitterServer::Reply SplitterServer::query(const Request& req,
                                            std::uint64_t client) {
  std::uint64_t epoch = 0;
  const std::shared_ptr<const Index> idx = snapshot(epoch);
  return query_on(idx, epoch, req, client);
}

std::vector<SplitterServer::Reply> SplitterServer::query_batch(
    const std::vector<Request>& reqs, std::uint64_t client) {
  std::vector<Reply> out;
  out.reserve(reqs.size());
  std::uint64_t epoch = 0;
  const std::shared_ptr<const Index> idx = snapshot(epoch);
  for (const Request& req : reqs) {
    out.push_back(query_on(idx, epoch, req, client));
  }
  return out;
}

SplitterServer::Reply SplitterServer::query_on(
    const std::shared_ptr<const Index>& idx, std::uint64_t epoch,
    const Request& req, std::uint64_t client) {
  const auto t0 = Clock::now();
  Reply rep;
  rep.epoch = epoch;
  QueryTrace row;
  row.kind = query_kind_name(req.kind);
  row.client = client;
  row.epoch = rep.epoch;
  row.k = req.k;
  if (!idx) {
    rep.admission = "error";
    rep.error = "service not started";
    rep.seconds = seconds_since(t0);
    row.admission = rep.admission;
    row.detail = rep.error;
    row.seconds = rep.seconds;
    trace_.record(std::move(row));
    return rep;
  }

  // Admission: cost the request, charge the budget; over budget, queue on
  // the condvar — woken by the budget's release listener — until admitted
  // or the deadline sheds the query.  try_reserve is never called while
  // holding admit_mu_ (lock-order discipline vs. budget reclaimers); the
  // generation counter closes the wakeup race instead.
  const std::uint64_t need = idx->footprint_bytes(req.kind, req.k);
  rep.admission = "admit";
  std::optional<MemoryReservation> ticket = ctx_->budget().try_reserve(need);
  if (!ticket && cfg_.queue_wait > 0) {
    rep.admission = "queued";
    const auto deadline =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(cfg_.queue_wait));
    admit_waiters_.fetch_add(1, std::memory_order_release);
    while (!ticket && !stop_.load() && Clock::now() < deadline) {
      const std::uint64_t gen = admit_gen_.load(std::memory_order_acquire);
      ticket = ctx_->budget().try_reserve(need);
      if (ticket) break;
      std::unique_lock<std::mutex> lk(admit_mu_);
      admit_cv_.wait_until(lk, deadline, [&] {
        return admit_gen_.load(std::memory_order_acquire) != gen ||
               stop_.load();
      });
    }
    admit_waiters_.fetch_sub(1, std::memory_order_release);
    if (!ticket) ticket = ctx_->budget().try_reserve(need);  // deadline race
  }
  rep.queue_seconds = seconds_since(t0);
  if (!ticket) {
    rep.admission = "shed";
    rep.error = "over budget: query needs " + std::to_string(need) + " bytes";
    shed_.fetch_add(1);
  } else {
    // Two-phase admission: drop the ticket so the engine can reserve its
    // actual working set (the estimate is an upper bound on it).  A query
    // racing past admission into a collision sheds at the engine's own
    // reserve instead.
    ticket.reset();
    try {
      switch (req.kind) {
        case QueryKind::kRank: {
          const auto r = idx->rank(req.lo);
          rep.value = r.value;
          rep.io = r.io;
          break;
        }
        case QueryKind::kRange: {
          const auto r = idx->range_count(req.lo, req.hi);
          rep.value = r.value;
          rep.io = r.io;
          break;
        }
        case QueryKind::kHistogram: {
          auto r = idx->histogram(req.k);
          rep.hist = std::move(r.value);
          rep.io = r.io;
          break;
        }
        case QueryKind::kTopK: {
          auto r = idx->top_k(req.k, req.largest);
          rep.records = std::move(r.value);
          rep.io = r.io;
          break;
        }
      }
      rep.ok = true;
      served_.fetch_add(1);
      if (rep.io.bucket_hits > 0 && idx->bucket_cache()) {
        rep.cache_epoch = idx->bucket_cache()->epoch();
      }
    } catch (const BudgetExceeded& ex) {
      rep.admission = "shed";
      rep.error = ex.what();
      shed_.fetch_add(1);
    } catch (const std::exception& ex) {
      rep.admission = "error";
      rep.error = ex.what();
    }
  }
  rep.seconds = seconds_since(t0);

  row.admission = rep.admission;
  row.ok = rep.ok;
  row.queue_seconds = rep.queue_seconds;
  row.seconds = rep.seconds;
  row.io = rep.io;
  row.value = rep.value;
  row.detail = rep.error;
  trace_.record(std::move(row));
  return rep;
}

SplitterServer::ParseKind SplitterServer::parse_query(const std::string& line,
                                                      Request& req,
                                                      std::string& err) const {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  const auto u64_arg = [&](std::uint64_t& out) {
    std::string tok;
    return static_cast<bool>(in >> tok) && parse_u64(tok, out);
  };

  if (cmd == "RANK" || cmd == "RANGE") {
    req.kind = cmd == "RANK" ? QueryKind::kRank : QueryKind::kRange;
    std::uint64_t lo = 0;
    if (!u64_arg(lo)) {
      err = "usage: " + cmd + " <key> [<key>]";
      return ParseKind::kBad;
    }
    // Key-level probes: payload saturated, so rank(key) counts every record
    // with a key <= the probe regardless of payload.
    req.lo = Record{lo, ~0ULL};
    if (req.kind == QueryKind::kRange) {
      std::uint64_t hi = 0;
      if (!u64_arg(hi)) {
        err = "usage: RANGE <lo-key> <hi-key>";
        return ParseKind::kBad;
      }
      req.hi = Record{hi, ~0ULL};
    }
    return ParseKind::kQuery;
  }
  if (cmd == "HIST") {
    req.kind = QueryKind::kHistogram;
    if (!u64_arg(req.k)) {
      err = "usage: HIST <k>";
      return ParseKind::kBad;
    }
    return ParseKind::kQuery;
  }
  if (cmd == "TOPK") {
    req.kind = QueryKind::kTopK;
    if (!u64_arg(req.k)) {
      err = "usage: TOPK <k> [MIN]";
      return ParseKind::kBad;
    }
    std::string dir;
    if (in >> dir) {
      if (dir == "MIN") {
        req.largest = false;
      } else if (dir != "MAX") {
        err = "usage: TOPK <k> [MIN]";
        return ParseKind::kBad;
      }
    }
    return ParseKind::kQuery;
  }
  return ParseKind::kOther;
}

std::string SplitterServer::format_reply(const Request& req,
                                         const Reply& rep) const {
  if (!rep.ok) {
    return (rep.admission == "shed" ? "SHED " : "ERR ") + rep.error + "\n";
  }
  switch (req.kind) {
    case QueryKind::kRank:
    case QueryKind::kRange:
      return "OK " + std::to_string(rep.value) + "\n";
    case QueryKind::kHistogram: {
      std::string out = "OK " + std::to_string(rep.hist.buckets()) + " " +
                        std::to_string(rep.hist.total) + "\n";
      for (std::size_t i = 0; i < rep.hist.buckets(); ++i) {
        out += "BUCKET " + std::to_string(rep.hist.sizes[i]);
        if (i < rep.hist.boundaries.size()) {
          out += " " + std::to_string(rep.hist.boundaries[i].key);
        }
        out += "\n";
      }
      return out + "END\n";
    }
    case QueryKind::kTopK: {
      std::string out = "OK " + std::to_string(rep.records.size()) + "\n";
      for (const Record& r : rep.records) {
        out += "REC " + std::to_string(r.key) + " " +
               std::to_string(r.payload) + "\n";
      }
      return out + "END\n";
    }
  }
  return "ERR internal\n";
}

std::string SplitterServer::bad_line(const std::string& line,
                                     std::uint64_t client,
                                     const std::string& why) {
  QueryTrace row;
  row.kind = "?";
  row.client = client;
  row.epoch = epoch();
  row.admission = "error";
  row.detail = why + ": " + line;
  trace_.record(std::move(row));
  return "ERR " + why + "\n";
}

std::string SplitterServer::handle_line(const std::string& line,
                                        std::uint64_t client,
                                        bool& close_conn) {
  Request req;
  std::string err;
  switch (parse_query(line, req, err)) {
    case ParseKind::kQuery:
      return format_reply(req, query(req, client));
    case ParseKind::kBad:
      return bad_line(line, client, err);
    case ParseKind::kOther:
      break;
  }

  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd == "STATS") {
    std::string out = "OK epoch=" + std::to_string(epoch()) +
                      " n=" + std::to_string(size()) +
                      " served=" + std::to_string(served_.load()) +
                      " shed=" + std::to_string(shed_.load());
    if (const auto cache = bucket_cache()) {
      out += " bucket_hits=" + std::to_string(cache->hits()) +
             " bucket_coalesced=" + std::to_string(cache->coalesced());
    }
    return out + "\n";
  }
  if (cmd == "EPOCH") {
    return "OK " + std::to_string(epoch()) + "\n";
  }
  if (cmd == "REFRESH") {
    try {
      return "OK " + std::to_string(refresh()) + "\n";
    } catch (const std::exception& ex) {
      return std::string("ERR ") + ex.what() + "\n";
    }
  }
  if (cmd == "SHUTDOWN") {
    close_conn = true;
    stop();
    return "OK bye\n";
  }
  return bad_line(line, client, "unknown command");
}

std::vector<std::string> SplitterServer::handle_batch(
    const std::vector<std::string>& lines, std::uint64_t client,
    bool& close_conn) {
  std::vector<std::string> outs;
  outs.reserve(lines.size());
  std::shared_ptr<const Index> pinned;
  std::uint64_t pinned_epoch = 0;
  for (const std::string& line : lines) {
    if (close_conn) break;  // nothing after SHUTDOWN
    Request req;
    std::string err;
    switch (parse_query(line, req, err)) {
      case ParseKind::kQuery:
        // Consecutive query lines share one pinned snapshot: every reply in
        // the run carries the same epoch, and the bucket cache serves the
        // whole run from one generation.
        if (!pinned) pinned = snapshot(pinned_epoch);
        outs.push_back(
            format_reply(req, query_on(pinned, pinned_epoch, req, client)));
        break;
      case ParseKind::kBad:
        outs.push_back(bad_line(line, client, err));
        break;
      case ParseKind::kOther:
        // Control lines run unpinned: REFRESH waits for every snapshot pin
        // to drain, and a connection must never deadlock against its own.
        pinned.reset();
        outs.push_back(handle_line(line, client, close_conn));
        break;
    }
  }
  return outs;
}

void SplitterServer::serve_conn(int fd, std::uint64_t client) {
  std::string buf;
  char tmp[8192];
  bool close_conn = false;
  while (!close_conn && !stop_.load()) {
    // Pipelining: drain every complete line currently buffered — one read
    // may carry many requests — and answer the batch with one writev.
    std::vector<std::string> lines;
    std::size_t pos = 0;
    for (std::size_t nl; (nl = buf.find('\n', pos)) != std::string::npos;
         pos = nl + 1) {
      std::string line = buf.substr(pos, nl - pos);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) lines.push_back(std::move(line));
    }
    buf.erase(0, pos);
    if (lines.empty()) {
      if (buf.size() > kMaxLineBytes) {
        (void)write_all(fd, "ERR line too long\n");
        break;
      }
      pollfd p{};
      p.fd = fd;
      p.events = POLLIN;
      const int pr = ::poll(&p, 1, 100);
      if (pr < 0 && errno != EINTR) break;
      if (pr <= 0) continue;
      const ssize_t r = ::read(fd, tmp, sizeof(tmp));
      if (r <= 0) break;
      buf.append(tmp, static_cast<std::size_t>(r));
      continue;
    }
    const std::vector<std::string> outs = handle_batch(lines, client, close_conn);
    if (!writev_all(fd, outs)) break;
  }
  ::close(fd);
}

void SplitterServer::accept_loop(int lfd, bool tcp) {
  std::vector<std::thread> conns;
  while (!stop_.load()) {
    pollfd p{};
    p.fd = lfd;
    p.events = POLLIN;
    const int pr = ::poll(&p, 1, 100);
    if (pr < 0 && errno != EINTR) break;
    if (pr <= 0) continue;
    const int cfd = ::accept(lfd, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    if (tcp) {
      // Pipelined request/response lines are latency-bound: never Nagle.
      const int one = 1;
      (void)::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    const std::uint64_t id = next_client_.fetch_add(1) + 1;
    conns.emplace_back(&SplitterServer::serve_conn, this, cfd, id);
  }
  for (std::thread& t : conns) t.join();
}

void SplitterServer::serve_unix(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("service: socket path too long");
  }
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                socket_path.c_str());

  const int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (lfd < 0) throw std::runtime_error("service: socket() failed");
  ::unlink(socket_path.c_str());
  if (::bind(lfd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(lfd, 64) < 0) {
    ::close(lfd);
    throw std::runtime_error("service: cannot listen on " + socket_path);
  }

  accept_loop(lfd, /*tcp=*/false);
  ::close(lfd);
  ::unlink(socket_path.c_str());
}

void SplitterServer::serve_tcp(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "*" || host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else {
    const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
    if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
      throw std::invalid_argument("service: bad listen host " + host);
    }
  }

  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (lfd < 0) throw std::runtime_error("service: socket() failed");
  const int one = 1;
  (void)::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(lfd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(lfd, 64) < 0) {
    ::close(lfd);
    throw std::runtime_error("service: cannot listen on " + host + ":" +
                             std::to_string(port));
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  if (::getsockname(lfd, reinterpret_cast<sockaddr*>(&bound), &blen) == 0) {
    tcp_port_.store(ntohs(bound.sin_port), std::memory_order_release);
  }

  accept_loop(lfd, /*tcp=*/true);
  ::close(lfd);
}

}  // namespace emsplit
